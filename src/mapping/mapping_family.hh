/**
 * @file
 * Mapping families: invertible phys<->DRAM transforms.
 *
 * Every memory controller we model ends in a linear GF(2) core —
 * bank bits are XORs of address bits, row/column indices are gathered
 * bit sets. What differs across vendors is the *coordinate space* the
 * core operates in:
 *
 *  - Intel (LinearGf2Family): the core consumes the physical address
 *    directly. The whole mapping is linear over GF(2).
 *  - AMD Zen (ZenOffsetFamily): the controller first subtracts a
 *    region base address ("address-offset regions" in the ZenHammer
 *    reverse engineering) and applies the XOR-of-hashed-bits functions
 *    to the *normalized* address. The mod-2^n subtraction carries, so
 *    the end-to-end phys->bank map is NOT linear over GF(2): naive
 *    XOR-pair probing mixes timing classes for any bit the carry chain
 *    can reach.
 *
 * A family therefore is: a bijective normalized<->physical transform
 * (normalize/denormalize) around the shared linear core. decode() and
 * encode() compose the two; reverse engineering recovers the offset
 * first and the core second (see revng/reverse_engineer).
 */

#ifndef RHO_MAPPING_MAPPING_FAMILY_HH
#define RHO_MAPPING_MAPPING_FAMILY_HH

#include <memory>
#include <string>
#include <vector>

#include "common/gf2.hh"
#include "common/types.hh"

namespace rho
{

/** Geographic DRAM coordinates. Bank is flat across ranks/groups. */
struct DramAddr
{
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
    std::uint64_t col = 0;

    bool
    operator==(const DramAddr &o) const
    {
        return bank == o.bank && row == o.row && col == o.col;
    }
};

/** Which coordinate-space transform a mapping family applies. */
enum class MappingFamilyKind
{
    LinearGf2, //!< identity transform: fully linear over GF(2)
    ZenOffset, //!< mod-2^n region-offset subtraction before the core
};

/**
 * An invertible phys<->DRAM transform: a per-family normalization
 * bijection wrapped around a linear GF(2) core.
 *
 * Invariants: the union of {bank functions as rows, row bits, column
 * bits} must form a square full-rank GF(2) system so the core is
 * bijective over the normalized space; normalize()/denormalize() must
 * be mutually inverse bijections of [0, 2^physBits).
 */
class MappingFamily
{
  public:
    /**
     * @param phys_bits total number of physical address bits covered
     *        (memory size = 2^phys_bits bytes).
     * @param bank_fn_masks one mask per bank bit; mask bit j selects
     *        normalized bit j into the XOR.
     * @param row_bits normalized bit positions forming the row index
     *        (ascending significance).
     * @param col_bits normalized bit positions forming the column
     *        index.
     */
    MappingFamily(unsigned phys_bits,
                  std::vector<std::uint64_t> bank_fn_masks,
                  std::vector<unsigned> row_bits,
                  std::vector<unsigned> col_bits);
    virtual ~MappingFamily() = default;

    MappingFamily(const MappingFamily &) = delete;
    MappingFamily &operator=(const MappingFamily &) = delete;

    virtual MappingFamilyKind kind() const = 0;

    /**
     * Region base subtracted before the linear core (0 for linear
     * families). Measured in bytes; always a multiple of 1 GiB on the
     * modelled parts.
     */
    virtual std::uint64_t regionOffset() const = 0;

    /** Physical address -> normalized core coordinate. */
    virtual PhysAddr normalize(PhysAddr pa) const = 0;

    /** Normalized core coordinate -> physical address. */
    virtual PhysAddr denormalize(PhysAddr norm) const = 0;

    /** Translate a physical address into DRAM coordinates. */
    DramAddr
    decode(PhysAddr pa) const
    {
        return coreDecode(normalize(pa));
    }

    /** Exact inverse of decode(). */
    PhysAddr
    encode(const DramAddr &da) const
    {
        return denormalize(coreEncode(da));
    }

    // Normalized-space introspection (the structure reverse
    // engineering recovers).
    unsigned physBits() const { return nPhysBits; }
    std::uint64_t memBytes() const { return 1ULL << nPhysBits; }
    unsigned numBankFns() const { return bankFns.size(); }
    std::uint32_t numBanks() const { return 1u << bankFns.size(); }
    std::uint64_t numRows() const { return 1ULL << rowBits.size(); }
    std::uint64_t numCols() const { return 1ULL << colBits.size(); }
    const std::vector<std::uint64_t> &bankFnMasks() const
    {
        return bankFns;
    }
    const std::vector<unsigned> &rowBitPositions() const
    {
        return rowBits;
    }
    const std::vector<unsigned> &colBitPositions() const
    {
        return colBits;
    }

    /** @return true iff decode() is a bijection (full-rank core). */
    bool isBijective() const { return bijective; }

    /** Human-readable summary, Table 4 style. */
    std::string describe() const;

  protected:
    DramAddr coreDecode(PhysAddr norm) const;
    PhysAddr coreEncode(const DramAddr &da) const;

  private:
    unsigned nPhysBits;
    std::vector<std::uint64_t> bankFns;
    std::vector<unsigned> rowBits;
    std::vector<unsigned> colBits;
    std::shared_ptr<const Gf2Solver> solver;
    bool bijective;
};

/** Intel-style fully linear mapping: normalize is the identity. */
class LinearGf2Family final : public MappingFamily
{
  public:
    using MappingFamily::MappingFamily;

    MappingFamilyKind kind() const override
    {
        return MappingFamilyKind::LinearGf2;
    }
    std::uint64_t regionOffset() const override { return 0; }
    PhysAddr normalize(PhysAddr pa) const override { return pa; }
    PhysAddr denormalize(PhysAddr norm) const override { return norm; }
};

/**
 * AMD Zen-style mapping: the controller subtracts a region base
 * (mod 2^physBits) before applying the XOR-of-hashed-bits core. The
 * subtraction's borrow chain makes the end-to-end map non-linear over
 * GF(2) for every bit at or above the offset's lowest set bit.
 */
class ZenOffsetFamily final : public MappingFamily
{
  public:
    ZenOffsetFamily(unsigned phys_bits, std::uint64_t region_offset,
                    std::vector<std::uint64_t> bank_fn_masks,
                    std::vector<unsigned> row_bits,
                    std::vector<unsigned> col_bits);

    MappingFamilyKind kind() const override
    {
        return MappingFamilyKind::ZenOffset;
    }
    std::uint64_t regionOffset() const override { return offset; }

    PhysAddr
    normalize(PhysAddr pa) const override
    {
        return (pa - offset) & addrMask;
    }

    PhysAddr
    denormalize(PhysAddr norm) const override
    {
        return (norm + offset) & addrMask;
    }

  private:
    std::uint64_t offset;
    std::uint64_t addrMask;
};

} // namespace rho

#endif // RHO_MAPPING_MAPPING_FAMILY_HH
