#include "mapping/address_mapping.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace rho
{

AddressMapping::AddressMapping(unsigned phys_bits,
                               std::vector<std::uint64_t> bank_fn_masks,
                               std::vector<unsigned> row_bits,
                               std::vector<unsigned> col_bits)
    : nPhysBits(phys_bits), bankFns(std::move(bank_fn_masks)),
      rowBits(std::move(row_bits)), colBits(std::move(col_bits))
{
    if (phys_bits > 63)
        fatal("AddressMapping: phys_bits %u too large", phys_bits);
    std::sort(rowBits.begin(), rowBits.end());
    std::sort(colBits.begin(), colBits.end());

    unsigned total = bankFns.size() + rowBits.size() + colBits.size();
    if (total != nPhysBits) {
        fatal("AddressMapping: %zu bank fns + %zu row + %zu col bits "
              "!= %u phys bits",
              bankFns.size(), rowBits.size(), colBits.size(), nPhysBits);
    }

    // Build the linear system once: rows ordered bank fns, row bits,
    // col bits; encode() solves it for arbitrary right-hand sides.
    Gf2Matrix m(nPhysBits);
    for (std::uint64_t fn : bankFns)
        m.addRow(fn);
    for (unsigned b : rowBits)
        m.addRow(1ULL << b);
    for (unsigned b : colBits)
        m.addRow(1ULL << b);
    solver = std::make_shared<Gf2Solver>(m);
    bijective = solver->fullRank();
}

DramAddr
AddressMapping::decode(PhysAddr pa) const
{
    DramAddr da;
    for (std::size_t i = 0; i < bankFns.size(); ++i)
        da.bank |= static_cast<std::uint32_t>(parity(pa, bankFns[i])) << i;
    for (std::size_t i = 0; i < rowBits.size(); ++i)
        da.row |= bit(pa, rowBits[i]) << i;
    for (std::size_t i = 0; i < colBits.size(); ++i)
        da.col |= bit(pa, colBits[i]) << i;
    return da;
}

PhysAddr
AddressMapping::encode(const DramAddr &da) const
{
    std::uint64_t rhs = 0;
    unsigned pos = 0;
    for (std::size_t i = 0; i < bankFns.size(); ++i, ++pos)
        rhs |= bit(da.bank, i) << pos;
    for (std::size_t i = 0; i < rowBits.size(); ++i, ++pos)
        rhs |= bit(da.row, i) << pos;
    for (std::size_t i = 0; i < colBits.size(); ++i, ++pos)
        rhs |= bit(da.col, i) << pos;

    auto sol = solver->solve(rhs);
    if (!sol)
        panic("AddressMapping::encode: unsolvable (mapping not bijective)");
    return *sol;
}

std::string
AddressMapping::describe() const
{
    std::string out = "Bank Func:";
    for (std::size_t i = 0; i < bankFns.size(); ++i) {
        out += i ? ", (" : " (";
        auto bits = bitsOfMask(bankFns[i]);
        for (std::size_t j = 0; j < bits.size(); ++j) {
            if (j)
                out += ", ";
            out += std::to_string(bits[j]);
        }
        out += ")";
    }
    if (!rowBits.empty()) {
        out += strFormat("; Row: %u-%u", rowBits.front(), rowBits.back());
    }
    return out;
}

bool
AddressMapping::sameBankAndRowStructure(const AddressMapping &o) const
{
    if (nPhysBits != o.nPhysBits || bankFns.size() != o.bankFns.size())
        return false;
    if (rowBits != o.rowBits)
        return false;

    // Bank functions may be recovered in any order / basis; the bank
    // partition is identical iff the GF(2) spans are equal, which for
    // equal sizes reduces to mutual containment of one span.
    Gf2Matrix mine(nPhysBits);
    for (auto fn : bankFns)
        mine.addRow(fn);
    unsigned base_rank = mine.rank();
    for (auto fn : o.bankFns) {
        Gf2Matrix ext(nPhysBits);
        for (auto f2 : bankFns)
            ext.addRow(f2);
        ext.addRow(fn);
        if (ext.rank() != base_rank)
            return false; // fn outside our span
    }
    return true;
}

} // namespace rho
