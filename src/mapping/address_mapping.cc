#include "mapping/address_mapping.hh"

#include "common/gf2.hh"
#include "common/logging.hh"

namespace rho
{

AddressMapping::AddressMapping(unsigned phys_bits,
                               std::vector<std::uint64_t> bank_fn_masks,
                               std::vector<unsigned> row_bits,
                               std::vector<unsigned> col_bits)
    : fam(std::make_shared<LinearGf2Family>(
          phys_bits, std::move(bank_fn_masks), std::move(row_bits),
          std::move(col_bits)))
{
}

AddressMapping::AddressMapping(std::shared_ptr<const MappingFamily> family)
    : fam(std::move(family))
{
    if (!fam)
        panic("AddressMapping: null family");
}

bool
AddressMapping::sameBankAndRowStructure(const AddressMapping &o) const
{
    if (fam->kind() != o.fam->kind()
        || fam->regionOffset() != o.fam->regionOffset())
        return false;
    if (fam->physBits() != o.fam->physBits()
        || fam->numBankFns() != o.fam->numBankFns())
        return false;
    if (fam->rowBitPositions() != o.fam->rowBitPositions())
        return false;

    // Bank functions may be recovered in any order / basis; the bank
    // partition is identical iff the GF(2) spans are equal, which for
    // equal sizes reduces to mutual containment of one span.
    Gf2Matrix mine(fam->physBits());
    for (auto fn : fam->bankFnMasks())
        mine.addRow(fn);
    unsigned base_rank = mine.rank();
    for (auto fn : o.fam->bankFnMasks()) {
        Gf2Matrix ext(fam->physBits());
        for (auto f2 : fam->bankFnMasks())
            ext.addRow(f2);
        ext.addRow(fn);
        if (ext.rank() != base_rank)
            return false; // fn outside our span
    }
    return true;
}

} // namespace rho
