#include "mapping/mapping_presets.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"

namespace rho
{

std::string
archName(Arch arch)
{
    switch (arch) {
      case Arch::CometLake: return "Comet Lake";
      case Arch::RocketLake: return "Rocket Lake";
      case Arch::AlderLake: return "Alder Lake";
      case Arch::RaptorLake: return "Raptor Lake";
      case Arch::Zen3: return "Zen 3";
      case Arch::CortexA72: return "Cortex-A72";
    }
    panic("archName: bad arch");
}

std::string
archCpu(Arch arch)
{
    switch (arch) {
      case Arch::CometLake: return "i7-10700K";
      case Arch::RocketLake: return "i7-11700";
      case Arch::AlderLake: return "i9-12900";
      case Arch::RaptorLake: return "i7-14700K";
      case Arch::Zen3: return "R9-5950X";
      case Arch::CortexA72: return "Cortex-A72";
    }
    panic("archCpu: bad arch");
}

unsigned
archMemFreq(Arch arch)
{
    switch (arch) {
      case Arch::CometLake: return 2933;
      case Arch::RocketLake: return 2933;
      case Arch::AlderLake: return 3200;
      case Arch::RaptorLake: return 3200;
      case Arch::Zen3: return 3200;
      case Arch::CortexA72: return 3200;
    }
    panic("archMemFreq: bad arch");
}

bool
archRefBlocking(Arch arch)
{
    switch (arch) {
      case Arch::CometLake:
      case Arch::RocketLake:
      case Arch::AlderLake:
      case Arch::RaptorLake:
        return false;
      case Arch::Zen3:
      case Arch::CortexA72:
        return true;
    }
    panic("archRefBlocking: bad arch");
}

namespace
{

std::vector<unsigned>
range(unsigned lo, unsigned hi)
{
    std::vector<unsigned> out;
    for (unsigned i = lo; i <= hi; ++i)
        out.push_back(i);
    return out;
}

std::vector<std::uint64_t>
masksOf(const std::vector<std::vector<unsigned>> &fns)
{
    std::vector<std::uint64_t> masks;
    masks.reserve(fns.size());
    for (const auto &f : fns)
        masks.push_back(maskOfBits(f));
    return masks;
}

AddressMapping
make(unsigned phys_bits,
     std::vector<std::vector<unsigned>> fns,
     unsigned row_lo, unsigned row_hi)
{
    // Column bits are the low 13 bits (8 KiB row across the rank) in
    // all configurations of Table 4.
    return AddressMapping(phys_bits, masksOf(fns),
                          range(row_lo, row_hi), range(0, 12));
}

/**
 * The Zen DRAM region base: the modelled part interleaves its UMC
 * regions at 3 GiB, so the controller subtracts 0xC0000000 before
 * hashing. Two set bits — the subtraction's borrow chain is what makes
 * the end-to-end map non-linear (a single-bit base would reduce to an
 * XOR).
 */
constexpr std::uint64_t zenRegionBase = 0xC0000000ULL;

AddressMapping
zenMake(unsigned phys_bits,
        std::vector<std::vector<unsigned>> fns,
        unsigned row_lo, unsigned row_hi)
{
    return AddressMapping(std::make_shared<ZenOffsetFamily>(
        phys_bits, zenRegionBase, masksOf(fns),
        range(row_lo, row_hi), range(0, 12)));
}

} // namespace

AddressMapping
mappingFor(Arch arch, unsigned size_gib, unsigned ranks)
{
    bool newer = arch == Arch::AlderLake || arch == Arch::RaptorLake;

    // AMD Zen 3: ZenHammer-style interleaved functions — one COL-ish
    // low function plus stride-4 hashed-bit combs reaching the top
    // address bit — applied to the region-normalized address.
    if (arch == Arch::Zen3) {
        if (size_gib == 8 && ranks == 1) {
            return zenMake(33,
                           {{6, 13},
                            {14, 18, 22, 26, 30},
                            {15, 19, 23, 27, 31},
                            {16, 20, 24, 28, 32}},
                           17, 32);
        }
        if (size_gib == 16 && ranks == 2) {
            return zenMake(34,
                           {{6, 13},
                            {14, 18, 22, 26, 30},
                            {15, 19, 23, 27, 31},
                            {16, 20, 24, 28, 32},
                            {17, 21, 25, 29, 33}},
                           18, 33);
        }
        if (size_gib == 32 && ranks == 2) {
            return zenMake(35,
                           {{6, 13},
                            {14, 18, 22, 26, 30, 34},
                            {15, 19, 23, 27, 31},
                            {16, 20, 24, 28, 32},
                            {17, 21, 25, 29, 33}},
                           18, 34);
        }
        fatal("mappingFor: unsupported geometry %u GiB x %u ranks",
              size_gib, ranks);
    }

    // Cortex-A72 boards ship the simple linear interleaving scheme
    // (same shape Comet/Rocket use); Intel Comet/Rocket vs Alder/
    // Raptor split per paper Table 4.
    if (size_gib == 8 && ranks == 1) {
        if (!newer) {
            return make(33, {{16, 19}, {15, 18}, {14, 17}, {6, 13}},
                        17, 32);
        }
        return make(33,
                    {{14, 17, 21, 26, 29, 32},
                     {15, 18, 20, 23, 24, 27, 30},
                     {16, 19, 22, 25, 28, 31},
                     {9, 11, 13}},
                    17, 32);
    }
    if (size_gib == 16 && ranks == 2) {
        if (!newer) {
            return make(34,
                        {{17, 21}, {16, 20}, {15, 19}, {14, 18}, {6, 13}},
                        18, 33);
        }
        return make(34,
                    {{14, 18, 26, 29, 32},
                     {16, 20, 23, 24, 27, 30, 33},
                     {17, 21, 22, 25, 28, 31},
                     {15, 19},
                     {9, 11, 13}},
                    18, 33);
    }
    if (size_gib == 32 && ranks == 2) {
        if (!newer) {
            return make(35,
                        {{17, 21}, {16, 20}, {15, 19}, {14, 18}, {6, 13}},
                        18, 34);
        }
        return make(35,
                    {{14, 18, 26, 29, 32},
                     {16, 20, 23, 24, 27, 30, 33},
                     {17, 21, 22, 25, 28, 31, 34},
                     {15, 19},
                     {9, 11, 13}},
                    18, 34);
    }
    fatal("mappingFor: unsupported geometry %u GiB x %u ranks",
          size_gib, ranks);
}

AddressMapping
randomizedMapping(Rng &rng, unsigned phys_bits, unsigned num_bank_fns,
                  unsigned num_non_row_fns)
{
    constexpr unsigned num_col_bits = 13;
    if (num_non_row_fns >= num_bank_fns)
        fatal("randomizedMapping: need at least one row-inclusive fn");
    if (phys_bits < num_col_bits + num_bank_fns + 4)
        fatal("randomizedMapping: phys_bits too small");

    unsigned row_lo = num_col_bits + num_bank_fns;
    unsigned row_hi = phys_bits - 1;

    // Each function gets one dedicated "unique" bit (13..row_lo-1),
    // which guarantees the overall system is full rank / bijective.
    std::vector<unsigned> unique_bits = range(num_col_bits, row_lo - 1);
    rng.shuffle(unique_bits);

    // Bank functions must be bit-disjoint (as in every observed real
    // mapping): a shared bit would make two functions cancel jointly
    // and is not recoverable from pairwise timings alone.
    // Column extras start at bit 6: bits 0-5 address within a cache
    // line / burst and never participate in bank functions on real
    // parts (and timing probes cannot see them).
    std::vector<unsigned> col_pool = range(6, num_col_bits - 1);
    std::vector<unsigned> row_pool = range(row_lo, row_hi);
    rng.shuffle(col_pool);
    rng.shuffle(row_pool);
    std::size_t col_at = 0, row_at = 0;

    std::vector<std::uint64_t> masks;
    for (unsigned i = 0; i < num_bank_fns; ++i) {
        std::uint64_t mask = 1ULL << unique_bits[i];
        bool non_row = i < num_non_row_fns;
        if (non_row) {
            // Low-order function: unique bit + 1-2 column bits.
            unsigned extra = 1 + rng.uniformInt(0, 1);
            for (unsigned k = 0; k < extra && col_at < col_pool.size();
                 ++k) {
                mask |= 1ULL << col_pool[col_at++];
            }
        } else {
            // Row-inclusive function: unique bit + 1-3 row bits.
            unsigned extra = 1 + rng.uniformInt(0, 2);
            for (unsigned k = 0; k < extra && row_at < row_pool.size();
                 ++k) {
                mask |= 1ULL << row_pool[row_at++];
            }
        }
        masks.push_back(mask);
    }

    return AddressMapping(phys_bits, std::move(masks),
                          range(row_lo, row_hi), range(0, num_col_bits - 1));
}

} // namespace rho
