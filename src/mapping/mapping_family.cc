#include "mapping/mapping_family.hh"

#include <algorithm>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace rho
{

MappingFamily::MappingFamily(unsigned phys_bits,
                             std::vector<std::uint64_t> bank_fn_masks,
                             std::vector<unsigned> row_bits,
                             std::vector<unsigned> col_bits)
    : nPhysBits(phys_bits), bankFns(std::move(bank_fn_masks)),
      rowBits(std::move(row_bits)), colBits(std::move(col_bits))
{
    if (phys_bits > 63)
        fatal("MappingFamily: phys_bits %u too large", phys_bits);
    std::sort(rowBits.begin(), rowBits.end());
    std::sort(colBits.begin(), colBits.end());

    unsigned total = bankFns.size() + rowBits.size() + colBits.size();
    if (total != nPhysBits) {
        fatal("MappingFamily: %zu bank fns + %zu row + %zu col bits "
              "!= %u phys bits",
              bankFns.size(), rowBits.size(), colBits.size(), nPhysBits);
    }

    // Build the linear system once: rows ordered bank fns, row bits,
    // col bits; coreEncode() solves it for arbitrary right-hand sides.
    Gf2Matrix m(nPhysBits);
    for (std::uint64_t fn : bankFns)
        m.addRow(fn);
    for (unsigned b : rowBits)
        m.addRow(1ULL << b);
    for (unsigned b : colBits)
        m.addRow(1ULL << b);
    solver = std::make_shared<Gf2Solver>(m);
    bijective = solver->fullRank();
}

DramAddr
MappingFamily::coreDecode(PhysAddr norm) const
{
    DramAddr da;
    for (std::size_t i = 0; i < bankFns.size(); ++i)
        da.bank |= static_cast<std::uint32_t>(parity(norm, bankFns[i])) << i;
    for (std::size_t i = 0; i < rowBits.size(); ++i)
        da.row |= bit(norm, rowBits[i]) << i;
    for (std::size_t i = 0; i < colBits.size(); ++i)
        da.col |= bit(norm, colBits[i]) << i;
    return da;
}

PhysAddr
MappingFamily::coreEncode(const DramAddr &da) const
{
    std::uint64_t rhs = 0;
    unsigned pos = 0;
    for (std::size_t i = 0; i < bankFns.size(); ++i, ++pos)
        rhs |= bit(da.bank, i) << pos;
    for (std::size_t i = 0; i < rowBits.size(); ++i, ++pos)
        rhs |= bit(da.row, i) << pos;
    for (std::size_t i = 0; i < colBits.size(); ++i, ++pos)
        rhs |= bit(da.col, i) << pos;

    auto sol = solver->solve(rhs);
    if (!sol)
        panic("MappingFamily::encode: unsolvable (core not bijective)");
    return *sol;
}

std::string
MappingFamily::describe() const
{
    std::string out = "Bank Func:";
    for (std::size_t i = 0; i < bankFns.size(); ++i) {
        out += i ? ", (" : " (";
        auto bits = bitsOfMask(bankFns[i]);
        for (std::size_t j = 0; j < bits.size(); ++j) {
            if (j)
                out += ", ";
            out += std::to_string(bits[j]);
        }
        out += ")";
    }
    if (!rowBits.empty()) {
        out += strFormat("; Row: %u-%u", rowBits.front(), rowBits.back());
    }
    if (regionOffset() != 0)
        out += strFormat("; Offset: 0x%llx",
                         static_cast<unsigned long long>(regionOffset()));
    return out;
}

ZenOffsetFamily::ZenOffsetFamily(unsigned phys_bits,
                                 std::uint64_t region_offset,
                                 std::vector<std::uint64_t> bank_fn_masks,
                                 std::vector<unsigned> row_bits,
                                 std::vector<unsigned> col_bits)
    : MappingFamily(phys_bits, std::move(bank_fn_masks),
                    std::move(row_bits), std::move(col_bits)),
      offset(region_offset), addrMask((1ULL << phys_bits) - 1)
{
    if (region_offset >= (1ULL << phys_bits))
        fatal("ZenOffsetFamily: offset 0x%llx outside %u-bit space",
              static_cast<unsigned long long>(region_offset), phys_bits);
    // An offset with a single set bit degenerates to XOR with that bit
    // for half the space and is better modelled as a linear function;
    // real Zen region bases are sums of DIMM capacities (>= 2 bits).
    if (region_offset != 0 && (region_offset & (region_offset - 1)) == 0)
        fatal("ZenOffsetFamily: single-bit offset is linear; use "
              "LinearGf2Family");
}

} // namespace rho
