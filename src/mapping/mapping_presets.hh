/**
 * @file
 * Ground-truth DRAM address mappings per architecture (paper Table 4
 * plus the multi-vendor backends of ROADMAP item 1) and the machine
 * inventory (paper Table 1).
 */

#ifndef RHO_MAPPING_MAPPING_PRESETS_HH
#define RHO_MAPPING_MAPPING_PRESETS_HH

#include <array>
#include <string>

#include "common/rng.hh"
#include "mapping/address_mapping.hh"

namespace rho
{

/**
 * The architecture registry: the single source of truth for the Arch
 * enum AND the allArchs iteration array. Adding a backend means adding
 * one X() line here; every per-arch dispatch switch is compiled with
 * -Wall (-Wswitch) and no default case, so a missing preset is a
 * compile warning, and tests/test_backend.cc calls every per-arch
 * function for every registry entry so a runtime panic cannot hide.
 *
 * Order: the four evaluated Intel micro-architectures (paper Table 1)
 * in generation order, then the non-Intel backends.
 */
#define RHO_ARCH_LIST(X)                                                \
    X(CometLake)  /* Intel i7-10700K, 10th gen                */        \
    X(RocketLake) /* Intel i7-11700, 11th gen                 */        \
    X(AlderLake)  /* Intel i9-12900, 12th gen                 */        \
    X(RaptorLake) /* Intel i7-14700K, 14th gen                */        \
    X(Zen3)       /* AMD Ryzen 9 5950X, non-linear mapping    */        \
    X(CortexA72)  /* ARMv8 Cortex-A72 board, DC CIVAC flushes */

/** All modelled micro-architectures (see RHO_ARCH_LIST). */
enum class Arch
{
#define RHO_ARCH_ENUM_ENTRY(name) name,
    RHO_ARCH_LIST(RHO_ARCH_ENUM_ENTRY)
#undef RHO_ARCH_ENUM_ENTRY
};

/** All architectures, derived from the registry — never hand-count. */
inline constexpr std::array allArchs = {
#define RHO_ARCH_ARRAY_ENTRY(name) Arch::name,
    RHO_ARCH_LIST(RHO_ARCH_ARRAY_ENTRY)
#undef RHO_ARCH_ARRAY_ENTRY
};

/** Number of registered architectures. */
inline constexpr std::size_t archCount = allArchs.size();

static_assert(static_cast<std::size_t>(allArchs.back()) + 1 == archCount,
              "allArchs out of sync with the Arch enum");

/** Short display name, e.g. "Comet Lake". */
std::string archName(Arch arch);

/** CPU model string from Table 1, e.g. "i7-10700K". */
std::string archCpu(Arch arch);

/** Max memory frequency (MT/s) from Table 1. */
unsigned archMemFreq(Arch arch);

/**
 * Does this platform's memory controller expose REF blocking to the
 * attacker (tRFC-long latency spikes every tREFI that synchronized
 * hammering can lock onto, ZenHammer style)? Intel parts hide the
 * spikes behind deep controller queues in the modelled configurations.
 */
bool archRefBlocking(Arch arch);

/**
 * Ground-truth mapping for an architecture and DRAM geometry.
 * Intel presets follow paper Table 4 (Comet/Rocket Lake share one
 * linear scheme; Alder/Raptor Lake another with wider, more numerous
 * bank functions). Zen 3 uses a ZenOffsetFamily: interleaved
 * XOR-of-hashed-bits functions applied after subtracting a region
 * base, so the end-to-end map is non-linear. Cortex-A72 boards use the
 * simple linear interleaving scheme.
 *
 * @param size_gib total DIMM capacity: 8, 16 or 32.
 * @param ranks number of ranks: 1 (8 GiB) or 2 (16/32 GiB).
 */
AddressMapping mappingFor(Arch arch, unsigned size_gib, unsigned ranks);

/**
 * Generate a random—but structurally valid—mapping for property
 * testing the reverse-engineering algorithms. The result is bijective,
 * has the requested number of bank functions, contiguous row bits and
 * low column bits; a configurable number of functions exclude row bits
 * (low-order functions such as (9,11,13) on Alder/Raptor).
 */
AddressMapping randomizedMapping(Rng &rng, unsigned phys_bits,
                                 unsigned num_bank_fns,
                                 unsigned num_non_row_fns);

} // namespace rho

#endif // RHO_MAPPING_MAPPING_PRESETS_HH
