/**
 * @file
 * Ground-truth DRAM address mappings per architecture (paper Table 4)
 * and the machine inventory (paper Table 1).
 */

#ifndef RHO_MAPPING_MAPPING_PRESETS_HH
#define RHO_MAPPING_MAPPING_PRESETS_HH

#include <array>
#include <string>

#include "common/rng.hh"
#include "mapping/address_mapping.hh"

namespace rho
{

/** The four evaluated Intel micro-architectures (paper Table 1). */
enum class Arch
{
    CometLake,  // i7-10700K, 10th gen
    RocketLake, // i7-11700, 11th gen
    AlderLake,  // i9-12900, 12th gen
    RaptorLake, // i7-14700K, 14th gen
};

/** All architectures, in generation order. */
constexpr std::array<Arch, 4> allArchs = {
    Arch::CometLake, Arch::RocketLake, Arch::AlderLake, Arch::RaptorLake
};

/** Short display name, e.g. "Comet Lake". */
std::string archName(Arch arch);

/** CPU model string from Table 1, e.g. "i7-10700K". */
std::string archCpu(Arch arch);

/** Max memory frequency (MT/s) from Table 1. */
unsigned archMemFreq(Arch arch);

/**
 * Ground-truth mapping for an architecture and DRAM geometry
 * (paper Table 4). Comet/Rocket Lake share one scheme; Alder/Raptor
 * Lake share another with wider, more numerous bank functions.
 *
 * @param size_gib total DIMM capacity: 8, 16 or 32.
 * @param ranks number of ranks: 1 (8 GiB) or 2 (16/32 GiB).
 */
AddressMapping mappingFor(Arch arch, unsigned size_gib, unsigned ranks);

/**
 * Generate a random—but structurally valid—mapping for property
 * testing the reverse-engineering algorithms. The result is bijective,
 * has the requested number of bank functions, contiguous row bits and
 * low column bits; a configurable number of functions exclude row bits
 * (low-order functions such as (9,11,13) on Alder/Raptor).
 */
AddressMapping randomizedMapping(Rng &rng, unsigned phys_bits,
                                 unsigned num_bank_fns,
                                 unsigned num_non_row_fns);

} // namespace rho

#endif // RHO_MAPPING_MAPPING_PRESETS_HH
