/**
 * @file
 * Physical-address to DRAM-address mapping.
 *
 * Modern memory controllers translate physical addresses into
 * (bank, row, column) coordinates with a linear map over GF(2):
 * each bank bit is the XOR of a set of physical address bits (a "bank
 * function"), and row/column indices are gathered from (possibly
 * shared) physical bits. This module models such mappings exactly,
 * including decode (phys -> dram) and encode (dram -> phys, via linear
 * solving), which the attack layers use to place aggressors.
 */

#ifndef RHO_MAPPING_ADDRESS_MAPPING_HH
#define RHO_MAPPING_ADDRESS_MAPPING_HH

#include <memory>
#include <string>
#include <vector>

#include "common/gf2.hh"
#include "common/types.hh"

namespace rho
{

/** Geographic DRAM coordinates. Bank is flat across ranks/groups. */
struct DramAddr
{
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
    std::uint64_t col = 0;

    bool
    operator==(const DramAddr &o) const
    {
        return bank == o.bank && row == o.row && col == o.col;
    }
};

/**
 * A linear DRAM address mapping.
 *
 * Invariants: the union of {bank functions as rows, row bits, column
 * bits} must form a square full-rank GF(2) system so that the mapping
 * is bijective over the covered physical address space.
 */
class AddressMapping
{
  public:
    /**
     * @param phys_bits total number of physical address bits covered
     *        (memory size = 2^phys_bits bytes).
     * @param bank_fn_masks one mask per bank bit; mask bit j selects
     *        physical bit j into the XOR.
     * @param row_bits physical bit positions forming the row index
     *        (ascending significance).
     * @param col_bits physical bit positions forming the column index.
     */
    AddressMapping(unsigned phys_bits,
                   std::vector<std::uint64_t> bank_fn_masks,
                   std::vector<unsigned> row_bits,
                   std::vector<unsigned> col_bits);

    unsigned physBits() const { return nPhysBits; }
    std::uint64_t memBytes() const { return 1ULL << nPhysBits; }
    unsigned numBankFns() const { return bankFns.size(); }
    std::uint32_t numBanks() const { return 1u << bankFns.size(); }
    std::uint64_t numRows() const { return 1ULL << rowBits.size(); }
    std::uint64_t numCols() const { return 1ULL << colBits.size(); }

    const std::vector<std::uint64_t> &bankFnMasks() const
    {
        return bankFns;
    }
    const std::vector<unsigned> &rowBitPositions() const
    {
        return rowBits;
    }
    const std::vector<unsigned> &colBitPositions() const
    {
        return colBits;
    }

    /** Translate a physical address into DRAM coordinates. */
    DramAddr decode(PhysAddr pa) const;

    /**
     * Construct the physical address of the given DRAM coordinates.
     * Exact inverse of decode() (mapping is bijective by construction).
     */
    PhysAddr encode(const DramAddr &da) const;

    /** Shorthand: physical address of (bank, row) at column 0. */
    PhysAddr
    rowToPhys(std::uint32_t bank, std::uint64_t row) const
    {
        return encode({bank, row, 0});
    }

    /** @return true iff decode() is a bijection (full-rank system). */
    bool isBijective() const { return bijective; }

    /** Human-readable summary, Table 4 style. */
    std::string describe() const;

    /**
     * Structural equality of the *mapping function* (not representation):
     * two mappings are equivalent if they induce the same bank
     * partition (same span of bank functions) and the same row
     * classification. Used to validate reverse-engineering results.
     */
    bool sameBankAndRowStructure(const AddressMapping &o) const;

  private:
    unsigned nPhysBits;
    std::vector<std::uint64_t> bankFns;
    std::vector<unsigned> rowBits;
    std::vector<unsigned> colBits;
    std::shared_ptr<const Gf2Solver> solver; // shared: mapping is copyable
    bool bijective;
};

} // namespace rho

#endif // RHO_MAPPING_ADDRESS_MAPPING_HH
