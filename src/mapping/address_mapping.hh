/**
 * @file
 * Physical-address to DRAM-address mapping.
 *
 * Modern memory controllers translate physical addresses into
 * (bank, row, column) coordinates. All modelled controllers share a
 * linear GF(2) core — each bank bit is the XOR of a set of address
 * bits (a "bank function"), row/column indices are gathered bit sets —
 * but vendors differ in the coordinate space the core consumes (see
 * mapping/mapping_family.hh). AddressMapping is the copyable value
 * type the rest of the simulator uses: a thin facade over an immutable
 * MappingFamily, including decode (phys -> dram) and encode (dram ->
 * phys), which the attack layers use to place aggressors.
 */

#ifndef RHO_MAPPING_ADDRESS_MAPPING_HH
#define RHO_MAPPING_ADDRESS_MAPPING_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mapping/mapping_family.hh"

namespace rho
{

/**
 * A DRAM address mapping (copyable handle to an immutable family).
 *
 * Invariants: the wrapped family's core must be a square full-rank
 * GF(2) system so that the mapping is bijective over the covered
 * physical address space.
 */
class AddressMapping
{
  public:
    /**
     * Build a fully linear (Intel-style) mapping. Kept as the primary
     * constructor so linear call sites stay family-agnostic.
     *
     * @param phys_bits total number of physical address bits covered
     *        (memory size = 2^phys_bits bytes).
     * @param bank_fn_masks one mask per bank bit; mask bit j selects
     *        physical bit j into the XOR.
     * @param row_bits physical bit positions forming the row index
     *        (ascending significance).
     * @param col_bits physical bit positions forming the column index.
     */
    AddressMapping(unsigned phys_bits,
                   std::vector<std::uint64_t> bank_fn_masks,
                   std::vector<unsigned> row_bits,
                   std::vector<unsigned> col_bits);

    /** Wrap an explicitly constructed family (any kind). */
    explicit AddressMapping(std::shared_ptr<const MappingFamily> family);

    unsigned physBits() const { return fam->physBits(); }
    std::uint64_t memBytes() const { return fam->memBytes(); }
    unsigned numBankFns() const { return fam->numBankFns(); }
    std::uint32_t numBanks() const { return fam->numBanks(); }
    std::uint64_t numRows() const { return fam->numRows(); }
    std::uint64_t numCols() const { return fam->numCols(); }

    // Normalized-space structure (for LinearGf2 families the
    // normalized space IS the physical space).
    const std::vector<std::uint64_t> &bankFnMasks() const
    {
        return fam->bankFnMasks();
    }
    const std::vector<unsigned> &rowBitPositions() const
    {
        return fam->rowBitPositions();
    }
    const std::vector<unsigned> &colBitPositions() const
    {
        return fam->colBitPositions();
    }

    /** The wrapped transform family. */
    const MappingFamily &family() const { return *fam; }
    MappingFamilyKind familyKind() const { return fam->kind(); }
    /** Region base subtracted before the core (0 for linear). */
    std::uint64_t regionOffset() const { return fam->regionOffset(); }
    /** Physical address -> normalized core coordinate. */
    PhysAddr normalize(PhysAddr pa) const { return fam->normalize(pa); }
    /** Normalized core coordinate -> physical address. */
    PhysAddr denormalize(PhysAddr n) const { return fam->denormalize(n); }

    /** Translate a physical address into DRAM coordinates. */
    DramAddr decode(PhysAddr pa) const { return fam->decode(pa); }

    /**
     * Construct the physical address of the given DRAM coordinates.
     * Exact inverse of decode() (mapping is bijective by construction).
     */
    PhysAddr encode(const DramAddr &da) const { return fam->encode(da); }

    /** Shorthand: physical address of (bank, row) at column 0. */
    PhysAddr
    rowToPhys(std::uint32_t bank, std::uint64_t row) const
    {
        return encode({bank, row, 0});
    }

    /** @return true iff decode() is a bijection (full-rank system). */
    bool isBijective() const { return fam->isBijective(); }

    /** Human-readable summary, Table 4 style. */
    std::string describe() const { return fam->describe(); }

    /**
     * Structural equality of the *mapping function* (not representation):
     * two mappings are equivalent if they apply the same coordinate
     * transform (kind + region offset) and their cores induce the same
     * bank partition (same span of bank functions) and the same row
     * classification. Used to validate reverse-engineering results.
     */
    bool sameBankAndRowStructure(const AddressMapping &o) const;

  private:
    std::shared_ptr<const MappingFamily> fam;
};

} // namespace rho

#endif // RHO_MAPPING_ADDRESS_MAPPING_HH
