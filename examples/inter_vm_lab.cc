/**
 * @file
 * Example: cross-VM RowHammer in the multi-tenant VM layer.
 *
 * Walks the whole inter-VM pipeline: carve two tenant partitions,
 * hammer from the attacker VM at its partition edges, classify flips
 * that cross the boundary, scrub them through on-die ECC, and
 * escalate one into a victim guest page-table takeover. Then re-runs
 * the same attack under each software defense (guard rows, per-tenant
 * bank partitioning, refresh boosting) to show what each one buys.
 */

#include <cstdio>

#include "common/logging.hh"
#include "exploit/cross_vm.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

namespace
{

CrossVmResult
runScenario(const char *label, const VmConfig &vm_cfg, bool ecc,
            double boost, std::uint64_t seed)
{
    Arch arch = Arch::RaptorLake;
    const DimmProfile &dimm = DimmProfile::byId("S4");
    EccConfig ecc_cfg;
    ecc_cfg.enabled = ecc;
    MemorySystem sys(arch, dimm, TrrConfig{}, seed, RfmConfig{},
                     PracConfig{}, ecc_cfg, boost);
    BuddyAllocator buddy(sys.mapping().memBytes(), 0.02, seed);
    VmManager vmm(sys, buddy, vm_cfg);
    if (!vmm.createTenants(2, 16ull << 20)) {
        std::printf("%-22s carve failed\n", label);
        return CrossVmResult{};
    }
    HammerSession session(sys, seed);

    CrossVmParams params;
    params.hammerCfg = rhoConfig(arch, false, 120000);
    params.vmCfg = vm_cfg;
    params.hammerRuns = 128; // enough sites for PTE-geometry flips
    CrossVmResult res = crossVmAttack(session, vmm, params, seed);
    std::printf("%-22s flips=%4llu cross=%3llu visible=%3llu "
                "takeover=%s\n",
                label, (unsigned long long)res.totalFlips,
                (unsigned long long)res.crossVmFlipsRaw,
                (unsigned long long)res.crossVmFlipsVisible,
                res.takeover ? "YES" : "no");
    return res;
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("cross-VM RowHammer: attacker VM 2 vs victim VM 1\n");
    std::printf("two 16 MiB tenants on RaptorLake + DIMM S4\n\n");

    VmConfig interleaved{VmPlacement::Interleaved, false};
    VmConfig contiguous{VmPlacement::Contiguous, false};
    VmConfig guarded{VmPlacement::Guarded, false};
    VmConfig bankpart{VmPlacement::Contiguous, true};

    CrossVmResult base =
        runScenario("interleaved", interleaved, false, 1.0, 2024);
    runScenario("interleaved + ECC", interleaved, true, 1.0, 2024);
    runScenario("contiguous", contiguous, false, 1.0, 2024);
    runScenario("guard rows", guarded, false, 1.0, 2024);
    runScenario("bank partition", bankpart, false, 1.0, 2024);
    runScenario("refresh boost 4x", interleaved, false, 4.0, 2024);

    if (base.takeover)
        std::printf("\nundefended interleaved placement: victim guest "
                    "PT captured via a %s flip at host 0x%llx\n",
                    base.crossFlips.empty() ? "?"
                        : (base.crossFlips[0].toOne ? "0->1" : "1->0"),
                    (unsigned long long)(base.crossFlips.empty()
                                             ? 0
                                             : base.crossFlips[0].hpa));
    std::printf("\nguard rows and bank partitioning remove the shared "
                "blast radius entirely; ECC and refresh boosting only "
                "raise the bar.\n");
    return base.crossVmFlipsRaw > 0 ? 0 : 1;
}
