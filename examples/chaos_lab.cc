/**
 * @file
 * Example: the chaos lab — the full reverse-engineering + end-to-end
 * PTE-attack pipeline under an escalating fault schedule.
 *
 * Each escalation step scales the default chaos mix (timing-noise
 * bursts + flip non-reproduction + allocator pressure) and reruns both
 * stages, reporting what the injector actually delivered, how many
 * retries and simulated-time backoffs the resilient consumers spent
 * absorbing it, and — when a stage finally gives up — the structured
 * failure code it reported instead of a crash or a silent wrong answer.
 *
 * The final scenario turns the chaos on the campaign *service*: a
 * supervised multi-process sweep where worker processes are SIGKILLed
 * mid-shard, retried with backoff, and the merged result is checked
 * bit-identical against an uninterrupted in-process run.
 *
 *   ./chaos_lab [seed]
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "common/rng.hh"
#include "exploit/pte_attack.hh"
#include "fault/fault_injector.hh"
#include "hammer/tuned_configs.hh"
#include "revng/reverse_engineer.hh"
#include "service/campaign_service.hh"

using namespace rho;

namespace
{

void
runStage(double scale, std::uint64_t seed)
{
    Arch arch = Arch::RaptorLake;
    const DimmProfile &dimm = DimmProfile::byId("S4");

    FaultSchedule sched = FaultSchedule::chaosDefault().scaled(scale);
    FaultInjector inj(sched, hashCombine(seed, 99));

    std::printf("--- chaos x%.1f: %s\n", scale,
                scale == 0.0 ? "(fault-free baseline)"
                             : sched.describe().c_str());

    // Stage 1: reverse-engineer the DRAM address mapping.
    {
        MemorySystem sys(arch, DimmProfile::byId("S1"), TrrConfig{},
                         hashCombine(seed, 1));
        sys.attachFaultInjector(&inj);
        BuddyAllocator buddy(sys.mapping().memBytes(), 0.02,
                             hashCombine(seed, 2));
        buddy.setFaultInjector(&inj);
        PhysPool pool(buddy, 0.70);
        TimingProbe probe(sys, hashCombine(seed, 3));

        MappingRecovery rec =
            RhoReverseEngineer(probe, pool, hashCombine(seed, 4)).run();
        if (rec.success) {
            std::printf("  re: recovered %zu bank fns, %zu row bits, "
                        "thres %.1f ns, %.1f s simulated%s\n",
                        rec.bankFns.size(), rec.rowBits.size(),
                        rec.thresholdNs, rec.simTimeNs / 1e9,
                        rec.matches(sys.mapping()) ? " (matches truth)"
                                                   : " (WRONG)");
        } else {
            std::printf("  re: FAILED honestly: %s [%s]\n",
                        rec.failureReason.c_str(),
                        failureCodeName(rec.code));
        }
        std::printf("  re: measurement %s\n",
                    rec.measureRetry.summary().c_str());
    }

    // Stage 2: end-to-end PTE attack (template -> massage -> re-hammer).
    {
        MemorySystem sys(arch, dimm, TrrConfig{}, hashCombine(seed, 5));
        sys.attachFaultInjector(&inj);
        BuddyAllocator buddy(sys.mapping().memBytes(), 0.02,
                             hashCombine(seed, 6));
        buddy.setFaultInjector(&inj);
        HammerSession session(sys, hashCombine(seed, 7));
        PageTableManager pt(sys, buddy);
        PteAttack attack(session, buddy, pt, hashCombine(seed, 8));

        PteAttackParams params;
        params.hammerCfg = rhoConfig(arch, false, 120000);
        params.regions = 3;

        PteAttackResult res = attack.run(params);
        if (res.success) {
            std::printf("  attack: SUCCESS — %u flips templated, PTE at "
                        "0x%llx corrupted, %.1f s simulated\n",
                        res.totalFlips,
                        (unsigned long long)res.corruptedPteAddr,
                        res.endToEndTimeNs / 1e9);
        } else {
            std::printf("  attack: FAILED honestly: %s [%s]\n",
                        res.failureReason.c_str(),
                        failureCodeName(res.code));
        }
        std::printf("  attack: templating %s\n",
                    res.templateRetry.summary().c_str());
        std::printf("  attack: massaging  %s\n",
                    res.massageRetry.summary().c_str());
        std::printf("  attack: re-hammer  %s\n",
                    res.rehammerRetry.summary().c_str());
    }

    std::printf("  faults delivered: %s\n", inj.stats().summary().c_str());
}

/** Digest of a SweepResult for the bit-identity check. */
std::uint64_t
sweepDigest(const rho::SweepResult &r)
{
    std::uint64_t h = hashCombine(r.totalFlips,
                                  std::uint64_t(r.simTimeNs * 1e3));
    for (auto f : r.flipsPerLocation)
        h = hashCombine(h, f);
    for (const auto &f : r.flipList) {
        h = hashCombine(h, f.bank);
        h = hashCombine(h, f.row);
        h = hashCombine(h, f.bitOffset);
    }
    return h;
}

/**
 * The supervisor scenario: shard a sweep campaign across worker
 * processes, SIGKILL a random worker mid-shard via the chaos channel,
 * and show the retry/backoff trail plus the bit-identity of the merged
 * result.
 */
void
runSupervisorScenario(std::uint64_t seed)
{
    using namespace rho::service;

    Arch arch = Arch::RaptorLake;
    const DimmProfile &dimm = DimmProfile::byId("S4");
    SystemSpec spec(arch, dimm);
    HammerConfig cfg = rhoConfig(arch, true);
    Rng prng(hashCombine(seed, 0xA77));
    HammerPattern pattern = HammerPattern::randomNonUniform(prng);

    SweepParams params;
    params.numLocations = 8;

    std::printf("--- supervisor chaos: SIGKILL workers mid-shard "
                "(P = 0.5 per launch)\n");
    FaultInjector faults(FaultSchedule::serviceChaos(0.5, 0.0, 0.0),
                         hashCombine(seed, 0x5E4));

    ServiceParams service;
    service.shards = 4;
    service.jobsPerWorker = 1;
    service.journalBase = "/tmp/rho_chaos_lab." +
                          std::to_string(::getpid());
    service.fsync = FsyncPolicy::Never; // chaos demo; speed over power
    service.supervisor.workers = 2;
    service.supervisor.retry.initialBackoffS = 0.01;
    service.supervisor.heartbeatTimeoutS = 5.0;
    service.faults = &faults;

    SweepServiceOutcome out =
        serviceSweepCampaign(spec, pattern, cfg, params, seed, service);

    for (const auto &line : out.report.supervisor.log)
        if (line.find("launched") == std::string::npos)
            std::printf("  supervisor: %s\n", line.c_str());

    SweepResult ref = sweepCampaign(spec, pattern, cfg, params, seed);
    bool same = sweepDigest(ref) == sweepDigest(out.result);
    std::printf("  merged result (%llu flips) is %s the uninterrupted "
                "in-process run\n",
                (unsigned long long)out.result.totalFlips,
                same ? "bit-identical to" : "DIFFERENT from");
    std::printf("  faults delivered: %s\n",
                faults.stats().summary().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0)
                                  : 7777;
    std::printf("chaos lab: RE + PTE attack under escalating faults "
                "(seed %llu)\n",
                (unsigned long long)seed);

    for (double scale : {0.0, 0.5, 1.0, 2.0})
        runStage(scale, seed);

    runSupervisorScenario(seed);

    std::printf("done — every stage either succeeded or reported a "
                "structured failure code; nothing crashed.\n");
    return 0;
}
