/**
 * @file
 * Example: the chaos lab — the full reverse-engineering + end-to-end
 * PTE-attack pipeline under an escalating fault schedule.
 *
 * Each escalation step scales the default chaos mix (timing-noise
 * bursts + flip non-reproduction + allocator pressure) and reruns both
 * stages, reporting what the injector actually delivered, how many
 * retries and simulated-time backoffs the resilient consumers spent
 * absorbing it, and — when a stage finally gives up — the structured
 * failure code it reported instead of a crash or a silent wrong answer.
 *
 *   ./chaos_lab [seed]
 */

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "common/rng.hh"
#include "exploit/pte_attack.hh"
#include "fault/fault_injector.hh"
#include "hammer/tuned_configs.hh"
#include "revng/reverse_engineer.hh"

using namespace rho;

namespace
{

void
runStage(double scale, std::uint64_t seed)
{
    Arch arch = Arch::RaptorLake;
    const DimmProfile &dimm = DimmProfile::byId("S4");

    FaultSchedule sched = FaultSchedule::chaosDefault().scaled(scale);
    FaultInjector inj(sched, hashCombine(seed, 99));

    std::printf("--- chaos x%.1f: %s\n", scale,
                scale == 0.0 ? "(fault-free baseline)"
                             : sched.describe().c_str());

    // Stage 1: reverse-engineer the DRAM address mapping.
    {
        MemorySystem sys(arch, DimmProfile::byId("S1"), TrrConfig{},
                         hashCombine(seed, 1));
        sys.attachFaultInjector(&inj);
        BuddyAllocator buddy(sys.mapping().memBytes(), 0.02,
                             hashCombine(seed, 2));
        buddy.setFaultInjector(&inj);
        PhysPool pool(buddy, 0.70);
        TimingProbe probe(sys, hashCombine(seed, 3));

        MappingRecovery rec =
            RhoReverseEngineer(probe, pool, hashCombine(seed, 4)).run();
        if (rec.success) {
            std::printf("  re: recovered %zu bank fns, %zu row bits, "
                        "thres %.1f ns, %.1f s simulated%s\n",
                        rec.bankFns.size(), rec.rowBits.size(),
                        rec.thresholdNs, rec.simTimeNs / 1e9,
                        rec.matches(sys.mapping()) ? " (matches truth)"
                                                   : " (WRONG)");
        } else {
            std::printf("  re: FAILED honestly: %s [%s]\n",
                        rec.failureReason.c_str(),
                        failureCodeName(rec.code));
        }
        std::printf("  re: measurement %s\n",
                    rec.measureRetry.summary().c_str());
    }

    // Stage 2: end-to-end PTE attack (template -> massage -> re-hammer).
    {
        MemorySystem sys(arch, dimm, TrrConfig{}, hashCombine(seed, 5));
        sys.attachFaultInjector(&inj);
        BuddyAllocator buddy(sys.mapping().memBytes(), 0.02,
                             hashCombine(seed, 6));
        buddy.setFaultInjector(&inj);
        HammerSession session(sys, hashCombine(seed, 7));
        PageTableManager pt(sys, buddy);
        PteAttack attack(session, buddy, pt, hashCombine(seed, 8));

        PteAttackParams params;
        params.hammerCfg = rhoConfig(arch, false, 120000);
        params.regions = 3;

        PteAttackResult res = attack.run(params);
        if (res.success) {
            std::printf("  attack: SUCCESS — %u flips templated, PTE at "
                        "0x%llx corrupted, %.1f s simulated\n",
                        res.totalFlips,
                        (unsigned long long)res.corruptedPteAddr,
                        res.endToEndTimeNs / 1e9);
        } else {
            std::printf("  attack: FAILED honestly: %s [%s]\n",
                        res.failureReason.c_str(),
                        failureCodeName(res.code));
        }
        std::printf("  attack: templating %s\n",
                    res.templateRetry.summary().c_str());
        std::printf("  attack: massaging  %s\n",
                    res.massageRetry.summary().c_str());
        std::printf("  attack: re-hammer  %s\n",
                    res.rehammerRetry.summary().c_str());
    }

    std::printf("  faults delivered: %s\n", inj.stats().summary().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0)
                                  : 7777;
    std::printf("chaos lab: RE + PTE attack under escalating faults "
                "(seed %llu)\n",
                (unsigned long long)seed);

    for (double scale : {0.0, 0.5, 1.0, 2.0})
        runStage(scale, seed);

    std::printf("done — every stage either succeeded or reported a "
                "structured failure code; nothing crashed.\n");
    return 0;
}
