/**
 * @file
 * Example: interactive-style exploration of DRAM address mappings —
 * decode physical addresses, locate row neighbours, and compare the
 * traditional (Comet/Rocket) vs recent (Alder/Raptor) schemes.
 *
 * Usage: mapping_explorer [hex-phys-addr]
 */

#include <cstdio>
#include <cstdlib>

#include "common/bits.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "mapping/mapping_presets.hh"

using namespace rho;

int
main(int argc, char **argv)
{
    setVerbose(false);
    PhysAddr pa = argc > 1
        ? std::strtoull(argv[1], nullptr, 16)
        : 0x1a2b3c4d0ULL;

    std::puts("ground-truth mappings (paper Table 4), 16 GiB "
              "dual-rank geometry:\n");
    for (Arch arch : {Arch::CometLake, Arch::RaptorLake}) {
        AddressMapping m = mappingFor(arch, 16, 2);
        std::printf("%s:\n  %s\n", archName(arch).c_str(),
                    m.describe().c_str());

        PhysAddr a = pa % m.memBytes();
        DramAddr da = m.decode(a);
        std::printf("  phys 0x%09llx -> bank %2u, row %6llu, col %4llu"
                    "  (round trip 0x%09llx)\n",
                    (unsigned long long)a, da.bank,
                    (unsigned long long)da.row,
                    (unsigned long long)da.col,
                    (unsigned long long)m.encode(da));

        std::printf("  double-sided aggressors for this row: "
                    "0x%09llx / 0x%09llx (rows %llu / %llu)\n",
                    (unsigned long long)m.rowToPhys(da.bank, da.row - 1),
                    (unsigned long long)m.rowToPhys(da.bank, da.row + 1),
                    (unsigned long long)(da.row - 1),
                    (unsigned long long)(da.row + 1));

        // How scattered are consecutive physical pages across banks?
        std::printf("  bank walk of 8 consecutive 4K pages:");
        for (unsigned i = 0; i < 8; ++i)
            std::printf(" %u", m.decode(a + i * pageBytes).bank);
        std::printf("\n\n");
    }

    std::puts("pure row bits (in no bank function):");
    for (Arch arch : {Arch::CometLake, Arch::RaptorLake}) {
        AddressMapping m = mappingFor(arch, 16, 2);
        std::uint64_t fn_union = 0;
        for (auto fn : m.bankFnMasks())
            fn_union |= fn;
        std::string bits;
        for (unsigned b : m.rowBitPositions()) {
            if (!bit(fn_union, b))
                bits += std::to_string(b) + " ";
        }
        std::printf("  %-12s %s\n", archName(arch).c_str(),
                    bits.empty() ? "(none - the paper's key "
                                   "observation on recent parts)"
                                 : bits.c_str());
    }
    return 0;
}
