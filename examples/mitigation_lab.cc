/**
 * @file
 * Example: mitigation laboratory (paper section 6) — measure how the
 * in-DRAM TRR configuration and the platform pTRR ("Rowhammer
 * Prevention" BIOS option) change rhoHammer's effectiveness.
 */

#include <cstdio>

#include "common/logging.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

namespace
{

std::uint64_t
campaign(const TrrConfig &trr, const char *label)
{
    MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S4"), trr, 9);
    HammerSession session(sys, 9);
    PatternFuzzer fuzzer(session, 10);
    FuzzParams params;
    params.numPatterns = 10;
    params.locationsPerPattern = 2;
    auto res = fuzzer.run(rhoConfig(Arch::RaptorLake, true), params);
    std::printf("%-44s total flips %-6llu (TRR issued %llu targeted "
                "refreshes)\n",
                label, (unsigned long long)res.totalFlips,
                (unsigned long long)sys.dimm().trrRefreshCount());
    return res.totalFlips;
}

} // namespace

int
main()
{
    setVerbose(false);
    std::puts("rhoHammer vs mitigations on Raptor Lake + DIMM S4\n");

    TrrConfig none;
    none.enabled = false;
    campaign(none, "no mitigation:");

    campaign(TrrConfig{}, "stock DDR4 TRR (evaded by non-uniform):");

    TrrConfig strong;
    strong.counters = 16;
    strong.sampleProb = 0.8;
    strong.matchThreshold = 8;
    strong.maxRefreshesPerTick = 4;
    campaign(strong, "beefed-up TRR sampler:");

    TrrConfig ptrr;
    ptrr.ptrr = true;
    campaign(ptrr, "TRR + pTRR (BIOS Rowhammer Prevention):");

    std::puts("\nShape: stock TRR barely matters against non-uniform "
              "patterns; a larger sampler helps somewhat; pTRR "
              "eliminates nearly all flips, matching the paper's "
              "BIOS experiment.");
    return 0;
}
