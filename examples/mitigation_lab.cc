/**
 * @file
 * Example: mitigation laboratory (paper section 6) — measure how the
 * in-DRAM TRR configuration and the platform pTRR ("Rowhammer
 * Prevention" BIOS option) change rhoHammer's effectiveness, then walk
 * the DDR5 mitigation frontier (RFM levels and PRAC/ABO) with the
 * bypass search.
 */

#include <cstdio>

#include "common/logging.hh"
#include "hammer/bypass_search.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

namespace
{

std::uint64_t
campaign(const TrrConfig &trr, const char *label)
{
    MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S4"), trr, 9);
    HammerSession session(sys, 9);
    PatternFuzzer fuzzer(session, 10);
    FuzzParams params;
    params.numPatterns = 10;
    params.locationsPerPattern = 2;
    auto res = fuzzer.run(rhoConfig(Arch::RaptorLake, true), params);
    std::printf("%-44s total flips %-6llu (TRR issued %llu targeted "
                "refreshes)\n",
                label, (unsigned long long)res.totalFlips,
                (unsigned long long)sys.dimm().trrRefreshCount());
    return res.totalFlips;
}

} // namespace

int
main()
{
    setVerbose(false);
    std::puts("rhoHammer vs mitigations on Raptor Lake + DIMM S4\n");

    TrrConfig none;
    none.enabled = false;
    campaign(none, "no mitigation:");

    campaign(TrrConfig{}, "stock DDR4 TRR (evaded by non-uniform):");

    TrrConfig strong;
    strong.counters = 16;
    strong.sampleProb = 0.8;
    strong.matchThreshold = 8;
    strong.maxRefreshesPerTick = 4;
    campaign(strong, "beefed-up TRR sampler:");

    TrrConfig ptrr;
    ptrr.ptrr = true;
    campaign(ptrr, "TRR + pTRR (BIOS Rowhammer Prevention):");

    std::puts("\nShape: stock TRR barely matters against non-uniform "
              "patterns; a larger sampler helps somewhat; pTRR "
              "eliminates nearly all flips, matching the paper's "
              "BIOS experiment.");

    std::puts("\nDDR5 mitigation frontier on the sample DDR5 DIMM\n");
    BypassParams search;
    search.fuzz.numPatterns = 10;
    search.fuzz.locationsPerPattern = 2;
    search.seed = 9;
    BypassReport report =
        bypassSearch(Arch::RaptorLake, DimmProfile::ddr5Sample(),
                     rhoConfig(Arch::RaptorLake, true, 200000),
                     mitigationFrontier(), search);
    for (const BypassConfigResult &r : report.configs) {
        std::printf("%-18s flips %-5llu f/min %-7.1f RFMs %-6llu "
                    "alerts %-5llu -> %s\n",
                    r.name.c_str(),
                    (unsigned long long)r.fuzz.totalFlips,
                    r.flipsPerMinute, (unsigned long long)r.rfmCommands,
                    (unsigned long long)r.pracAlerts,
                    r.bypassed ? "BYPASSED" : "holds");
    }
    std::printf("\n%zu of %zu frontier configs bypassed.\n",
                (std::size_t)report.bypassedCount(),
                report.configs.size());
    std::puts("Shape: the fuzzer finds effective patterns against the "
              "TRR-only baseline and under-provisioned PRAC (and a "
              "trickle against relaxed RFM), while RFM at RAAIMT <= 32 "
              "and provisioned PRAC hold — the paper's section 6 "
              "conclusion that correctly configured DDR5 setups expose "
              "no effective pattern.");
    return 0;
}
