/**
 * @file
 * Example: a fuzzing campaign comparing the load-based baseline with
 * rhoHammer on a chosen platform, followed by sweeping the best
 * pattern — the core loop of sections 4 and 5.2, running on the
 * deterministic parallel campaign engine.
 *
 * Usage: fuzz_campaign [arch] [dimm] [--jobs N]
 *   arch:   comet | rocket | alder | raptor   (default raptor)
 *   dimm:   S1..S5, H1, M1                    (default S3)
 *   --jobs: worker threads (default: hardware_concurrency); results
 *           are bit-identical for any value.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/sweep.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

namespace
{

Arch
parseArch(const char *s)
{
    if (!std::strcmp(s, "comet"))
        return Arch::CometLake;
    if (!std::strcmp(s, "rocket"))
        return Arch::RocketLake;
    if (!std::strcmp(s, "alder"))
        return Arch::AlderLake;
    if (!std::strcmp(s, "raptor"))
        return Arch::RaptorLake;
    fatal("unknown arch '%s'", s);
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    Arch arch = Arch::RaptorLake;
    const char *dimm = "S3";
    unsigned jobs = 0;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--jobs") || !std::strcmp(argv[i], "-j")) {
            if (i + 1 >= argc)
                fatal("--jobs needs a value");
            jobs = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (positional == 0) {
            arch = parseArch(argv[i]);
            ++positional;
        } else {
            dimm = argv[i];
            ++positional;
        }
    }

    std::printf("fuzzing %s + DIMM %s with %u worker thread(s)\n",
                archName(arch).c_str(), dimm, resolveJobs(jobs));

    SystemSpec spec(arch, DimmProfile::byId(dimm));

    FuzzParams params;
    params.numPatterns = 12;
    params.locationsPerPattern = 2;
    params.jobs = jobs;

    auto report = [&](const char *name, const HammerConfig &cfg) {
        ParallelStats stats;
        auto res = fuzzCampaign(spec, cfg, params, 2, &stats);
        std::printf("%-22s total=%-6llu best=%-5llu effective=%u/%u "
                    "(%.1f s simulated in %.1f s wall)\n",
                    name, (unsigned long long)res.totalFlips,
                    (unsigned long long)res.bestPatternFlips,
                    res.effectivePatterns, params.numPatterns,
                    res.simTimeNs / 1e9, stats.wallNs / 1e9);
        return res;
    };

    report("baseline (BL-S):", baselineConfig(arch, false));
    report("baseline multi (BL-M):", baselineConfig(arch, true));
    report("rhoHammer (rho-S):", rhoConfig(arch, false));
    auto best = report("rhoHammer multi (rho-M):", rhoConfig(arch, true));

    if (best.bestPattern) {
        SweepParams sp;
        sp.numLocations = 16;
        sp.jobs = jobs;
        ParallelStats stats;
        auto sw = sweepCampaign(spec, *best.bestPattern,
                                rhoConfig(arch, true), sp, 3, &stats);
        std::printf("\nsweeping the best pattern over 16 locations: "
                    "%llu flips (%.0f flips/min simulated)\n",
                    (unsigned long long)sw.totalFlips,
                    sw.flipsPerMinute());
        std::printf("engine: %s\n", stats.summary().c_str());
    } else {
        std::puts("\nno effective pattern found - try a more "
                  "flip-prone DIMM (S4) or more patterns");
    }
    return 0;
}
