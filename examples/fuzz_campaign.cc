/**
 * @file
 * Example: a fuzzing campaign comparing the load-based baseline with
 * rhoHammer on a chosen platform, followed by sweeping the best
 * pattern — the core loop of sections 4 and 5.2.
 *
 * Usage: fuzz_campaign [arch] [dimm]
 *   arch: comet | rocket | alder | raptor   (default raptor)
 *   dimm: S1..S5, H1, M1                    (default S3)
 */

#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/sweep.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

namespace
{

Arch
parseArch(const char *s)
{
    if (!std::strcmp(s, "comet"))
        return Arch::CometLake;
    if (!std::strcmp(s, "rocket"))
        return Arch::RocketLake;
    if (!std::strcmp(s, "alder"))
        return Arch::AlderLake;
    if (!std::strcmp(s, "raptor"))
        return Arch::RaptorLake;
    fatal("unknown arch '%s'", s);
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    Arch arch = argc > 1 ? parseArch(argv[1]) : Arch::RaptorLake;
    const char *dimm = argc > 2 ? argv[2] : "S3";

    std::printf("fuzzing %s + DIMM %s\n", archName(arch).c_str(), dimm);

    MemorySystem sys(arch, DimmProfile::byId(dimm), TrrConfig{}, 1);
    HammerSession session(sys, 1);
    PatternFuzzer fuzzer(session, 2);

    FuzzParams params;
    params.numPatterns = 12;
    params.locationsPerPattern = 2;

    auto report = [&](const char *name, const HammerConfig &cfg) {
        auto res = fuzzer.run(cfg, params);
        std::printf("%-22s total=%-6llu best=%-5llu effective=%u/%u "
                    "(%.1f s simulated)\n",
                    name, (unsigned long long)res.totalFlips,
                    (unsigned long long)res.bestPatternFlips,
                    res.effectivePatterns, params.numPatterns,
                    res.simTimeNs / 1e9);
        return res;
    };

    report("baseline (BL-S):", baselineConfig(arch, false));
    report("baseline multi (BL-M):", baselineConfig(arch, true));
    report("rhoHammer (rho-S):", rhoConfig(arch, false));
    auto best = report("rhoHammer multi (rho-M):", rhoConfig(arch, true));

    if (best.bestPattern) {
        auto sw = sweep(session, *best.bestPattern,
                        rhoConfig(arch, true), 16, 3);
        std::printf("\nsweeping the best pattern over 16 locations: "
                    "%llu flips (%.0f flips/min simulated)\n",
                    (unsigned long long)sw.totalFlips,
                    sw.flipsPerMinute());
    } else {
        std::puts("\nno effective pattern found - try a more "
                  "flip-prone DIMM (S4) or more patterns");
    }
    return 0;
}
