/**
 * @file
 * Quickstart: build a simulated machine (Raptor Lake + DIMM S2),
 * reverse-engineer its DRAM address mapping, tune the counter-
 * speculation NOP barrier and run one prefetch-based hammering pass.
 *
 * This is the 5-minute tour of the library's public API.
 *
 * Pass `--trace FILE.json` to record the run as a Chrome trace_event
 * document: open the file at https://ui.perfetto.dev to see phase
 * slices (reverse-engineering, NOP tuning, hammering) with bit-flip
 * and fault instants on the timeline. Tracing also switches on the
 * unified metrics dump at the end of the run.
 */

#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "hammer/nop_tuner.hh"
#include "hammer/pattern_fuzzer.hh"
#include "memsys/memory_system.hh"
#include "os/pagemap.hh"
#include "revng/reverse_engineer.hh"
#include "trace/chrome_trace.hh"
#include "trace/metrics.hh"
#include "trace/metrics_adapters.hh"
#include "trace/tracer.hh"

using namespace rho;

int
main(int argc, char **argv)
{
    setVerbose(false);

    const char *trace_path = nullptr;
    for (int i = 1; i + 1 < argc; ++i) {
        if (!std::strcmp(argv[i], "--trace"))
            trace_path = argv[i + 1];
    }

    // 1. A simulated machine: Raptor Lake core + DDR4 DIMM "S2".
    const DimmProfile &dimm = DimmProfile::byId("S2");
    MemorySystem sys(Arch::RaptorLake, dimm, TrrConfig{}, /*seed=*/42);
    std::printf("machine: %s + DIMM %s (%u GiB)\n",
                archName(sys.arch()).c_str(), dimm.id.c_str(),
                dimm.geom.sizeGib());

    // Optional event tracing. High-rate categories are masked off: a
    // quickstart run issues millions of ACTs (and the TRR sampler
    // observes a large fraction of them), which would swamp both the
    // ring and the Perfetto timeline. What remains — phase slices,
    // bit-flip and fault instants — is the story worth looking at.
    Tracer tracer(TraceConfig{true, CatFlip | CatFault | CatPhase,
                              std::size_t{1} << 20});
    if (trace_path)
        sys.attachTracer(&tracer);

    // 2. Reverse-engineer the DRAM address mapping from timing alone.
    BuddyAllocator buddy(sys.mapping().memBytes());
    PhysPool pool(buddy, 0.70);
    TimingProbe probe(sys, 7);
    RhoReverseEngineer re(probe, pool, 7);
    MappingRecovery rec = re.run();
    std::printf("mapping recovered in %.1f s (sim): %zu bank fns, "
                "rows %u-%u — %s\n",
                rec.simTimeNs / 1e9, rec.bankFns.size(),
                rec.rowBits.front(), rec.rowBits.back(),
                rec.matches(sys.mapping()) ? "matches ground truth"
                                           : "MISMATCH");

    // 3. Counter-speculation tuning: find the optimal NOP count.
    HammerSession session(sys, 11);
    Rng rng(11);
    HammerPattern pattern = HammerPattern::randomNonUniform(rng);
    HammerConfig cfg;
    cfg.instr = HammerInstr::PrefetchNta;
    cfg.numBanks = 3;
    cfg.obfuscate = true;
    cfg.accessBudget = 400000;
    NopTuneResult tune = tuneNops(session, pattern, cfg,
                                  {0, 60, 120, 180, 260, 400, 700},
                                  /*locations=*/4, 13);
    std::printf("NOP tuning: best=%u nops (%llu flips)\n", tune.bestNops,
                static_cast<unsigned long long>(tune.bestFlips));

    // 4. Hammer with the tuned configuration.
    cfg.barrier = BarrierKind::Nop;
    cfg.nopCount = tune.bestNops;
    HammerLocation loc = session.randomLocation(pattern, cfg);
    HammerOutcome out = session.hammer(pattern, loc, cfg);
    std::printf("hammering bank %u row %llu: %llu bit flips, "
                "miss rate %.0f%%, %.1f M ACT/s\n",
                loc.bank, static_cast<unsigned long long>(loc.baseRow),
                static_cast<unsigned long long>(out.flips),
                out.perf.missRate() * 100.0,
                out.perf.dramAccessRate() / 1e6);

    // 5. Export the trace and the unified counters.
    if (trace_path) {
        sys.attachTracer(nullptr);
        if (!chromeTraceWrite(trace_path, tracer.events())) {
            std::fprintf(stderr, "failed to write %s\n", trace_path);
            return 1;
        }
        std::printf("\nwrote %zu events to %s (load at "
                    "https://ui.perfetto.dev)\n",
                    tracer.events().size(), trace_path);
        if (tracer.dropped() > 0)
            std::printf("note: ring overflowed, %llu oldest events "
                        "dropped\n",
                        static_cast<unsigned long long>(tracer.dropped()));

        MetricsRegistry metrics;
        addMetrics(metrics, sys.dimm());
        addMetrics(metrics, out.perf);
        std::printf("\nunified metrics:\n%s", metrics.dump().c_str());
    }
    return 0;
}
