/**
 * @file
 * Quickstart: build a simulated machine (Raptor Lake + DIMM S2),
 * reverse-engineer its DRAM address mapping, tune the counter-
 * speculation NOP barrier and run one prefetch-based hammering pass.
 *
 * This is the 5-minute tour of the library's public API.
 */

#include <cstdio>

#include "common/logging.hh"
#include "hammer/nop_tuner.hh"
#include "hammer/pattern_fuzzer.hh"
#include "memsys/memory_system.hh"
#include "os/pagemap.hh"
#include "revng/reverse_engineer.hh"

using namespace rho;

int
main()
{
    setVerbose(false);

    // 1. A simulated machine: Raptor Lake core + DDR4 DIMM "S2".
    const DimmProfile &dimm = DimmProfile::byId("S2");
    MemorySystem sys(Arch::RaptorLake, dimm, TrrConfig{}, /*seed=*/42);
    std::printf("machine: %s + DIMM %s (%u GiB)\n",
                archName(sys.arch()).c_str(), dimm.id.c_str(),
                dimm.geom.sizeGib());

    // 2. Reverse-engineer the DRAM address mapping from timing alone.
    BuddyAllocator buddy(sys.mapping().memBytes());
    PhysPool pool(buddy, 0.70);
    TimingProbe probe(sys, 7);
    RhoReverseEngineer re(probe, pool, 7);
    MappingRecovery rec = re.run();
    std::printf("mapping recovered in %.1f s (sim): %zu bank fns, "
                "rows %u-%u — %s\n",
                rec.simTimeNs / 1e9, rec.bankFns.size(),
                rec.rowBits.front(), rec.rowBits.back(),
                rec.matches(sys.mapping()) ? "matches ground truth"
                                           : "MISMATCH");

    // 3. Counter-speculation tuning: find the optimal NOP count.
    HammerSession session(sys, 11);
    Rng rng(11);
    HammerPattern pattern = HammerPattern::randomNonUniform(rng);
    HammerConfig cfg;
    cfg.instr = HammerInstr::PrefetchNta;
    cfg.numBanks = 3;
    cfg.obfuscate = true;
    cfg.accessBudget = 400000;
    NopTuneResult tune = tuneNops(session, pattern, cfg,
                                  {0, 60, 120, 180, 260, 400, 700},
                                  /*locations=*/4, 13);
    std::printf("NOP tuning: best=%u nops (%llu flips)\n", tune.bestNops,
                static_cast<unsigned long long>(tune.bestFlips));

    // 4. Hammer with the tuned configuration.
    cfg.barrier = BarrierKind::Nop;
    cfg.nopCount = tune.bestNops;
    HammerLocation loc = session.randomLocation(pattern, cfg);
    HammerOutcome out = session.hammer(pattern, loc, cfg);
    std::printf("hammering bank %u row %llu: %llu bit flips, "
                "miss rate %.0f%%, %.1f M ACT/s\n",
                loc.bank, static_cast<unsigned long long>(loc.baseRow),
                static_cast<unsigned long long>(out.flips),
                out.perf.missRate() * 100.0,
                out.perf.dramAccessRate() / 1e6);
    return 0;
}
