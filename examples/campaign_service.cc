/**
 * @file
 * Example: the campaign service — a sweep campaign sharded across
 * supervised worker processes, surviving SIGKILLs, hangs and journal
 * bit-rot with a bit-identical merged result.
 *
 * Usage: campaign_service [arch] [dimm] [options]
 *   --locations N    sweep locations = campaign tasks     (default 12)
 *   --shards N       worker shards                        (default 4)
 *   --workers N      concurrent worker processes          (default 2)
 *   --jobs N         threads inside each worker           (default 1)
 *   --journal BASE   journal path prefix   (default /tmp/rho_svc.<pid>)
 *   --exec           fork+exec workers through this binary's --worker
 *                    entry instead of forked body-mode workers
 *   --chaos-kill P   P(worker launch is SIGKILLed mid-shard)
 *   --chaos-hang P   P(worker launch wedges; heartbeat kill)
 *   --bit-rot P      P(a journal record is written with a rotted bit)
 *   --seed S         campaign seed                        (default 42)
 *   --verify         also run the campaign uninterrupted in-process
 *                    and report whether the merged result is identical
 *   --log            print the supervisor event log
 *
 * The internal `--worker` entry is what --exec launches; it re-derives
 * the campaign deterministically from its arguments and runs exactly
 * one shard attempt.
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "common/rng.hh"
#include "fault/fault_injector.hh"
#include "hammer/tuned_configs.hh"
#include "service/campaign_service.hh"

using namespace rho;
using namespace rho::service;

namespace
{

Arch
parseArch(const char *s)
{
    if (!std::strcmp(s, "comet"))
        return Arch::CometLake;
    if (!std::strcmp(s, "rocket"))
        return Arch::RocketLake;
    if (!std::strcmp(s, "alder"))
        return Arch::AlderLake;
    if (!std::strcmp(s, "raptor"))
        return Arch::RaptorLake;
    fatal("unknown arch '%s'", s);
}

const char *
archArg(Arch a)
{
    switch (a) {
    case Arch::CometLake: return "comet";
    case Arch::RocketLake: return "rocket";
    case Arch::AlderLake: return "alder";
    case Arch::RaptorLake: return "raptor";
    }
    return "raptor";
}

/** The campaign is a pure function of (arch, dimm, seed): both the
 *  parent and exec-mode workers rebuild it from these three values. */
struct Scenario
{
    SystemSpec spec;
    HammerConfig cfg;
    HammerPattern pattern;

    Scenario(Arch arch, const char *dimm, std::uint64_t seed)
        : spec(arch, DimmProfile::byId(dimm)),
          cfg(rhoConfig(arch, true)),
          pattern(makePattern(seed))
    {
    }

    static HammerPattern
    makePattern(std::uint64_t seed)
    {
        Rng rng(hashCombine(seed, 0xA77));
        return HammerPattern::randomNonUniform(rng);
    }
};

/** Order-sensitive digest of everything a SweepResult carries. */
std::uint64_t
sweepDigest(const SweepResult &r)
{
    std::uint64_t h = hashCombine(r.totalFlips,
                                  std::uint64_t(r.simTimeNs * 1e3));
    for (auto f : r.flipsPerLocation)
        h = hashCombine(h, f);
    for (auto t : r.cumulativeTimeNs)
        h = hashCombine(h, std::uint64_t(t * 1e3));
    for (const auto &f : r.flipList) {
        h = hashCombine(h, f.bank);
        h = hashCombine(h, f.row);
        h = hashCombine(h, f.bitOffset);
        h = hashCombine(h, std::uint64_t(f.toOne));
        h = hashCombine(h, std::uint64_t(f.when * 1e3));
    }
    return h;
}

/** Exec-mode worker entry: one shard attempt, then exit. */
int
workerMain(int argc, char **argv)
{
    // --worker <arch> <dimm> <locations> <jobs> <seed> <shard> <first>
    //          <count> <journal> <status> <attempt> <crash-after>
    //          <hang-after> <rot-prob> <chaos-seed>
    if (argc != 17)
        fatal("--worker: expected 15 operands, got %d", argc - 2);
    char **a = argv + 2;
    Arch arch = parseArch(a[0]);
    const char *dimm = a[1];
    unsigned locations = unsigned(std::atoi(a[2]));
    unsigned jobs = unsigned(std::atoi(a[3]));
    std::uint64_t seed = std::strtoull(a[4], nullptr, 0);

    ShardSpec shard;
    shard.id = unsigned(std::atoi(a[5]));
    shard.firstTask = unsigned(std::atoi(a[6]));
    shard.taskCount = unsigned(std::atoi(a[7]));
    shard.journalPath = a[8];
    shard.statusPath = a[9];
    unsigned attempt = unsigned(std::atoi(a[10]));

    WorkerChaos chaos;
    chaos.crashAfterRecords = unsigned(std::atoi(a[11]));
    chaos.hangAfterRecords = unsigned(std::atoi(a[12]));
    double rotProb = std::atof(a[13]);
    std::uint64_t chaosSeed = std::strtoull(a[14], nullptr, 0);

    Scenario sc(arch, dimm, seed);
    SweepParams params;
    params.numLocations = locations;
    params.jobs = jobs;

    // Self-inflicted journal bit-rot (chaos does not cross the exec
    // boundary, so the worker owns its own injector).
    FaultInjector rot(FaultSchedule::serviceChaos(0.0, 0.0, rotProb),
                      hashCombine(chaosSeed,
                                  shard.id * 1000ull + attempt));
    if (rotProb > 0.0) {
        params.journal.bitRot = [&rot](std::size_t num_bits) {
            return rot.journalBitRot(num_bits);
        };
    }
    return runSweepShardWorker(sc.spec, sc.pattern, sc.cfg, params, seed,
                               shard, attempt, chaos);
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    if (argc > 1 && !std::strcmp(argv[1], "--worker"))
        return workerMain(argc, argv);

    Arch arch = Arch::RaptorLake;
    const char *dimm = "S4";
    unsigned locations = 12, shards = 4, workers = 2, jobs = 1;
    double chaosKill = 0.0, chaosHang = 0.0, bitRot = 0.0;
    std::uint64_t seed = 42;
    bool execMode = false, verify = false, showLog = false;
    std::string journalBase =
        "/tmp/rho_svc." + std::to_string(::getpid());

    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        auto val = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("%s needs a value", argv[i]);
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--locations"))
            locations = unsigned(std::atoi(val()));
        else if (!std::strcmp(argv[i], "--shards"))
            shards = unsigned(std::atoi(val()));
        else if (!std::strcmp(argv[i], "--workers"))
            workers = unsigned(std::atoi(val()));
        else if (!std::strcmp(argv[i], "--jobs"))
            jobs = unsigned(std::atoi(val()));
        else if (!std::strcmp(argv[i], "--journal"))
            journalBase = val();
        else if (!std::strcmp(argv[i], "--chaos-kill"))
            chaosKill = std::atof(val());
        else if (!std::strcmp(argv[i], "--chaos-hang"))
            chaosHang = std::atof(val());
        else if (!std::strcmp(argv[i], "--bit-rot"))
            bitRot = std::atof(val());
        else if (!std::strcmp(argv[i], "--seed"))
            seed = std::strtoull(val(), nullptr, 0);
        else if (!std::strcmp(argv[i], "--exec"))
            execMode = true;
        else if (!std::strcmp(argv[i], "--verify"))
            verify = true;
        else if (!std::strcmp(argv[i], "--log"))
            showLog = true;
        else if (positional == 0)
            arch = parseArch(argv[i]), ++positional;
        else
            dimm = argv[i], ++positional;
    }

    Scenario sc(arch, dimm, seed);
    SweepParams params;
    params.numLocations = locations;

    std::printf("campaign service: %s + DIMM %s, %u locations over %u "
                "shard(s), %u worker slot(s)%s\n",
                archName(arch).c_str(), dimm, locations, shards, workers,
                execMode ? " (exec mode)" : "");
    if (chaosKill > 0.0 || chaosHang > 0.0 || bitRot > 0.0)
        std::printf("chaos: P(kill)=%.2f P(hang)=%.2f P(bit-rot)=%.2f\n",
                    chaosKill, chaosHang, bitRot);

    FaultInjector faults(
        FaultSchedule::serviceChaos(chaosKill, chaosHang, bitRot),
        hashCombine(seed, 0xC4A5));

    ServiceParams service;
    service.shards = shards;
    service.jobsPerWorker = jobs;
    service.journalBase = journalBase;
    service.supervisor.workers = workers;
    service.supervisor.heartbeatTimeoutS = 5.0;
    service.supervisor.shardDeadlineS = 60.0;
    if (chaosKill > 0.0 || chaosHang > 0.0 || bitRot > 0.0)
        service.faults = &faults;

    std::string self = argv[0];
    if (execMode) {
        // Chaos plans still come from the parent's injector (via the
        // supervisor hook the service installs); the argv carries them
        // across the exec boundary.
        service.execArgv = [&](const ShardSpec &shard, unsigned attempt,
                               const WorkerChaos &chaos) {
            return std::vector<std::string>{
                self, "--worker", archArg(arch), dimm,
                std::to_string(locations), std::to_string(jobs),
                std::to_string(seed), std::to_string(shard.id),
                std::to_string(shard.firstTask),
                std::to_string(shard.taskCount), shard.journalPath,
                shard.statusPath, std::to_string(attempt),
                std::to_string(chaos.crashAfterRecords),
                std::to_string(chaos.hangAfterRecords),
                std::to_string(bitRot),
                std::to_string(hashCombine(seed, 0xC4A5)),
            };
        };
    }

    SweepServiceOutcome out =
        serviceSweepCampaign(sc.spec, sc.pattern, sc.cfg, params, seed,
                             service);

    if (showLog) {
        std::printf("\nsupervisor log:\n");
        for (const auto &line : out.report.supervisor.log)
            std::printf("  %s\n", line.c_str());
    }

    const SupervisorResult &sup = out.report.supervisor;
    std::printf("\nsupervision: %u crash(es), %u hang kill(s), %u "
                "quarantined, %u->%u worker slot(s)\n",
                sup.crashes, sup.hangs, sup.quarantined, sup.peakWorkers,
                sup.finalWorkers);
    std::printf("merge: %u task(s) replayed from worker journals, %u "
                "re-executed in the parent\n",
                out.report.tasksFromWorkers, out.report.tasksReexecuted);
    std::printf("result: %llu flips over %u location(s), %.1f s "
                "simulated [%s]\n",
                (unsigned long long)out.result.totalFlips,
                unsigned(out.result.flipsPerLocation.size()),
                out.result.simTimeNs / 1e9,
                failureCodeName(out.report.code));

    if (verify) {
        SweepParams clean = params;
        SweepResult ref = sweepCampaign(sc.spec, sc.pattern, sc.cfg,
                                        clean, seed);
        bool same = sweepDigest(ref) == sweepDigest(out.result);
        if (out.report.code == FailureCode::ShardQuarantined) {
            std::printf("verify: skipped digest match — result is "
                        "degraded (quarantined shard)\n");
        } else {
            std::printf("verify: merged result is %s the uninterrupted "
                        "in-process run\n",
                        same ? "IDENTICAL to" : "DIFFERENT from");
            if (!same)
                return 1;
        }
    }
    return 0;
}
