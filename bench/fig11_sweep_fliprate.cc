/**
 * @file
 * Figure 11: cumulative bit flips over iterative sweeping of the best
 * pattern on the four architectures (rhoHammer vs the load baseline),
 * plus the average flip rates and speedups reported in section 5.3.
 * Fuzzing and sweeping both fan out over the parallel campaign engine
 * (`--jobs N`; output is bit-identical for any job count).
 */

#include "bench_util.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/sweep.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

int
main(int argc, char **argv)
{
    bench::banner("Fig. 11",
                  "cumulative flips over best-pattern sweeping; flip "
                  "rates and speedups (DIMM S4)");
    unsigned jobs = bench::parseJobs(argc, argv);
    bench::announceJobs(jobs);

    SweepParams sp;
    sp.numLocations = static_cast<unsigned>(bench::scaled(24));
    sp.jobs = jobs;
    std::uint64_t budget = bench::scaled(380000);

    for (Arch arch : allArchs) {
        SystemSpec spec(arch, DimmProfile::byId("S4"));

        // Best pattern from a short rhoHammer fuzz; per the paper, on
        // Alder/Raptor the baseline reuses rhoHammer's best pattern
        // as a fallback since its own fuzzing yields nothing.
        FuzzParams fp;
        fp.numPatterns = static_cast<unsigned>(bench::scaled(8));
        fp.locationsPerPattern = 2;
        fp.jobs = jobs;
        auto fz = fuzzCampaign(spec, rhoConfig(arch, true, budget), fp,
                               23);
        if (!fz.bestPattern) {
            std::printf("%s: no effective pattern at this scale\n",
                        archName(arch).c_str());
            continue;
        }

        ParallelStats stats;
        auto rho = sweepCampaign(spec, *fz.bestPattern,
                                 rhoConfig(arch, true, budget), sp, 24,
                                 &stats);
        auto bl = sweepCampaign(spec, *fz.bestPattern,
                                baselineConfig(arch, false, budget), sp,
                                24);

        std::printf("--- %s ---\n", archName(arch).c_str());
        std::printf("%-10s", "location:");
        for (unsigned l = 0; l < sp.numLocations; l += 4)
            std::printf("%8u", l + 4);
        std::printf("\n%-10s", "rho cum:");
        std::uint64_t acc = 0;
        for (unsigned l = 0; l < sp.numLocations; ++l) {
            acc += rho.flipsPerLocation[l];
            if ((l + 1) % 4 == 0)
                std::printf("%8llu", (unsigned long long)acc);
        }
        std::printf("\n%-10s", "BL cum:");
        acc = 0;
        for (unsigned l = 0; l < sp.numLocations; ++l) {
            acc += bl.flipsPerLocation[l];
            if ((l + 1) % 4 == 0)
                std::printf("%8llu", (unsigned long long)acc);
        }
        double rho_rate = rho.flipsPerMinute();
        double bl_rate = bl.flipsPerMinute();
        std::printf("\nflip rate: rhoHammer %.0f/min, baseline "
                    "%.0f/min",
                    rho_rate, bl_rate);
        if (bl.totalFlips == 0)
            std::printf(" -> baseline reproduces none");
        else
            std::printf(" -> %.1fx speedup", rho_rate / bl_rate);
        std::printf("\nengine: %s\n\n", stats.summary().c_str());
    }
    std::puts("Shape: rhoHammer flips accumulate smoothly at every "
              "location; large speedups on Comet/Rocket; on "
              "Alder/Raptor the baseline reproduces no flips while "
              "rhoHammer sustains a practical rate.");
    return 0;
}
