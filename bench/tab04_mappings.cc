/**
 * @file
 * Table 4: reverse-engineered DRAM address mappings on the four most
 * recent Intel architectures across the three DIMM geometries, checked
 * against ground truth.
 */

#include "bench_util.hh"
#include "common/bits.hh"
#include "revng/reverse_engineer.hh"

using namespace rho;

int
main()
{
    bench::banner("Tab. 4",
                  "recovered DRAM address mappings per arch x geometry");

    struct Geo
    {
        const char *dimm;
        const char *label;
    };
    const Geo geos[] = {
        {"S2", "(8G, 1, 16)"},
        {"S1", "(16G, 2, 16)"},
        {"M1", "(32G, 2, 16)"},
    };

    for (const Geo &g : geos) {
        std::printf("--- Geometry %s (DIMM %s) ---\n", g.label, g.dimm);
        for (Arch arch : allArchs) {
            MemorySystem sys(arch, DimmProfile::byId(g.dimm),
                             TrrConfig{}, 19);
            BuddyAllocator buddy(sys.mapping().memBytes(), 0.02, 19);
            PhysPool pool(buddy, 0.70);
            TimingProbe probe(sys, 19);
            RhoReverseEngineer re(probe, pool, 19);
            MappingRecovery rec = re.run();

            std::string fns;
            for (auto fn : rec.bankFns) {
                fns += fns.empty() ? "(" : ", (";
                auto bits = bitsOfMask(fn);
                for (std::size_t i = 0; i < bits.size(); ++i) {
                    fns += (i ? ", " : "") + std::to_string(bits[i]);
                }
                fns += ")";
            }
            std::printf("%-12s Bank Func: %s; Row: %u-%u  [%s]\n",
                        archName(arch).c_str(), fns.c_str(),
                        rec.rowBits.empty() ? 0 : rec.rowBits.front(),
                        rec.rowBits.empty() ? 0 : rec.rowBits.back(),
                        rec.matches(sys.mapping()) ? "matches truth"
                                                   : "MISMATCH");
        }
        std::printf("\n");
    }
    std::puts("Shape: Comet/Rocket share one (simple) scheme, "
              "Alder/Raptor another with wider functions and the "
              "low-order (9,11,13)-style function; every recovery "
              "must match ground truth.");
    return 0;
}
