/**
 * @file
 * Table 4: reverse-engineered DRAM address mappings on every modelled
 * architecture (four Intel generations, AMD Zen 3's offset non-linear
 * family, ARM Cortex-A72) across the three DIMM geometries, checked
 * against ground truth.
 */

#include "bench_util.hh"
#include "common/bits.hh"
#include "revng/reverse_engineer.hh"

using namespace rho;

int
main()
{
    bench::banner("Tab. 4",
                  "recovered DRAM address mappings per arch x geometry");

    struct Geo
    {
        const char *dimm;
        const char *label;
    };
    const Geo geos[] = {
        {"S2", "(8G, 1, 16)"},
        {"S1", "(16G, 2, 16)"},
        {"M1", "(32G, 2, 16)"},
    };

    for (const Geo &g : geos) {
        std::printf("--- Geometry %s (DIMM %s) ---\n", g.label, g.dimm);
        for (Arch arch : allArchs) {
            MemorySystem sys(arch, DimmProfile::byId(g.dimm),
                             TrrConfig{}, 19);
            BuddyAllocator buddy(sys.mapping().memBytes(), 0.02, 19);
            PhysPool pool(buddy, 0.70);
            TimingProbe probe(sys, 19);
            RhoReverseEngineer re(probe, pool, 19);
            MappingRecovery rec = re.run();

            std::string fns;
            for (auto fn : rec.bankFns) {
                fns += fns.empty() ? "(" : ", (";
                auto bits = bitsOfMask(fn);
                for (std::size_t i = 0; i < bits.size(); ++i) {
                    fns += (i ? ", " : "") + std::to_string(bits[i]);
                }
                fns += ")";
            }
            std::string off;
            if (rec.regionOffset != 0) {
                off = strFormat("; Offset: %#llx",
                                static_cast<unsigned long long>(
                                    rec.regionOffset));
            }
            std::printf("%-12s Bank Func: %s; Row: %u-%u%s  [%s]\n",
                        archName(arch).c_str(), fns.c_str(),
                        rec.rowBits.empty() ? 0 : rec.rowBits.front(),
                        rec.rowBits.empty() ? 0 : rec.rowBits.back(),
                        off.c_str(),
                        rec.matches(sys.mapping()) ? "matches truth"
                                                   : "MISMATCH");
        }
        std::printf("\n");
    }
    std::puts("Shape: Comet/Rocket share one (simple) scheme, "
              "Alder/Raptor another with wider functions and the "
              "low-order (9,11,13)-style function, Zen 3 an offset "
              "non-linear one (normalized functions + region base), "
              "Cortex-A72 the simple scheme; every recovery must "
              "match ground truth.");
    return 0;
}
