/**
 * @file
 * Figure 4: heatmap of T_SBDR(M, {bx, by}) on Comet Lake (traditional
 * mapping with pure row bits) vs Raptor Lake (recent mapping without),
 * on the 16 GiB dual-rank DIMM S1.
 */

#include <vector>

#include "bench_util.hh"
#include "memsys/timing_probe.hh"
#include "os/pagemap.hh"

using namespace rho;

namespace
{

void
heatmap(Arch arch)
{
    MemorySystem sys(arch, DimmProfile::byId("S1"), TrrConfig{}, 4);
    BuddyAllocator buddy(sys.mapping().memBytes(), 0.02, 4);
    PhysPool pool(buddy, 0.70);
    TimingProbe probe(sys, 4);
    Rng rng(4);

    unsigned lo = 6, hi = sys.mapping().physBits() - 1;
    unsigned rounds =
        static_cast<unsigned>(std::max<std::uint64_t>(
            4, bench::scaled(10)));

    std::printf("--- %s, DIMM S1 (%s) ---\n", archName(arch).c_str(),
                sys.mapping().describe().c_str());
    std::printf("    ");
    for (unsigned bx = lo; bx <= hi; ++bx)
        std::printf("%4u", bx);
    std::printf("\n");

    for (unsigned by = lo; by <= hi; ++by) {
        std::printf("%3u ", by);
        for (unsigned bx = lo; bx <= hi; ++bx) {
            if (bx >= by) {
                std::printf("    ");
                continue;
            }
            std::uint64_t mask = (1ULL << bx) | (1ULL << by);
            auto base = pool.pairBase(rng, mask);
            if (!base) {
                std::printf("   ?");
                continue;
            }
            double avg = 0;
            for (int k = 0; k < 3; ++k)
                avg += probe.measurePair(*base, *base ^ mask, rounds);
            std::printf("%4.0f", avg / 3);
        }
        std::printf("\n");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    bench::banner("Fig. 4",
                  "T_SBDR(bx, by) heatmaps (ns): traditional vs "
                  "recent mappings");
    heatmap(Arch::CometLake);
    heatmap(Arch::RaptorLake);
    std::puts("Reading: large bright regions on Comet Lake come from "
              "pure row bits; on Raptor Lake only scattered "
              "same-function pairs remain slow.");
    return 0;
}
