/**
 * @file
 * google-benchmark micro-kernels for the hot paths of the simulator:
 * mapping decode/encode, DRAM access, branch prediction and the CPU
 * model's per-op cost.
 */

#include <benchmark/benchmark.h>

#include "cpu/branch_predictor.hh"
#include "cpu/sim_cpu.hh"
#include "hammer/tuned_configs.hh"
#include "memsys/memory_system.hh"

using namespace rho;

namespace
{

void
BM_MappingDecode(benchmark::State &state)
{
    AddressMapping m = mappingFor(Arch::RaptorLake, 16, 2);
    Rng rng(1);
    PhysAddr pa = rng.uniformInt(0, m.memBytes() - 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.decode(pa));
        pa += 4097;
        if (pa >= m.memBytes())
            pa -= m.memBytes();
    }
}
BENCHMARK(BM_MappingDecode);

void
BM_MappingEncode(benchmark::State &state)
{
    AddressMapping m = mappingFor(Arch::RaptorLake, 16, 2);
    DramAddr da{3, 1000, 0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.encode(da));
        da.row = (da.row + 1) & (m.numRows() - 1);
    }
}
BENCHMARK(BM_MappingEncode);

void
BM_DimmAccess(benchmark::State &state)
{
    const auto &prof = DimmProfile::byId("S2");
    Dimm dimm(prof, DramTiming::ddr4(3200), TrrConfig{});
    Ns now = 0.0;
    std::uint64_t row = 1000;
    for (auto _ : state) {
        auto r = dimm.access({0, row, 0}, now);
        now += r.latency;
        row = row == 1000 ? 1002 : 1000;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DimmAccess);

void
BM_BranchPredictor(benchmark::State &state)
{
    BranchPredictor bp;
    Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bp.predictAndUpdate(0x42, rng.chance(0.5), 1));
    }
}
BENCHMARK(BM_BranchPredictor);

void
BM_SimCpuHammerLoop(benchmark::State &state)
{
    // End-to-end cost per simulated hammer access, full stack.
    MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S2"),
                     TrrConfig{}, 3);
    HammerSession session(sys, 3);
    Rng rng(4);
    auto pattern = HammerPattern::randomNonUniform(rng);
    HammerConfig cfg = rhoConfig(Arch::RaptorLake, true,
                                 static_cast<std::uint64_t>(
                                     state.range(0)));
    auto loc = session.randomLocation(pattern, cfg);
    for (auto _ : state)
        benchmark::DoNotOptimize(session.hammer(pattern, loc, cfg));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimCpuHammerLoop)->Arg(50000)->Unit(
    benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
