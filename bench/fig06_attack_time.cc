/**
 * @file
 * Figure 6: average attack completion time per pattern using load or
 * one of the four prefetch hints as the hammering primitive, across
 * the four architectures.
 */

#include "bench_util.hh"
#include "hammer/hammer_session.hh"
#include "memsys/memory_system.hh"

using namespace rho;

int
main()
{
    bench::banner("Fig. 6",
                  "avg attack completion time (ms) per pattern, load "
                  "vs prefetch hints");

    const std::vector<HammerInstr> instrs = {
        HammerInstr::Load, HammerInstr::PrefetchT0,
        HammerInstr::PrefetchT1, HammerInstr::PrefetchT2,
        HammerInstr::PrefetchNta};

    TextTable table({"arch", "load", "pref-t0", "pref-t1", "pref-t2",
                     "pref-nta"});

    unsigned patterns = static_cast<unsigned>(bench::scaled(12));
    std::uint64_t budget = bench::scaled(300000);

    for (Arch arch : allArchs) {
        std::vector<std::string> row = {archName(arch)};
        for (HammerInstr instr : instrs) {
            MemorySystem sys(arch, DimmProfile::byId("S1"), TrrConfig{},
                             6);
            HammerSession session(sys, 6);
            Rng rng(7);
            double total_ms = 0;
            for (unsigned p = 0; p < patterns; ++p) {
                auto pattern = HammerPattern::randomNonUniform(rng);
                HammerConfig cfg;
                cfg.instr = instr;
                cfg.accessBudget = budget;
                auto loc = session.randomLocation(pattern, cfg);
                auto out = session.hammer(pattern, loc, cfg);
                total_ms += out.perf.timeNs / 1e6;
            }
            row.push_back(strFormat("%.1f", total_ms / patterns));
        }
        table.addRow(row);
    }
    table.print();
    std::printf("\n(%u patterns x %llu accesses each; paper: 80 "
                "patterns x 5M accesses)\n",
                patterns, (unsigned long long)budget);
    std::puts("Shape: all four prefetch hints are nearly equal and "
              "substantially faster than loads.");
    return 0;
}
