/**
 * @file
 * Shared helpers for the table/figure reproduction benches.
 *
 * Every bench prints the paper-style rows/series for its table or
 * figure. Experiment sizes are scaled-down versions of the paper's
 * multi-hour campaigns; set RHO_BENCH_SCALE (default 1.0, e.g. 0.25
 * for a quick pass or 4 for a longer one) to rescale budgets.
 */

#ifndef RHO_BENCH_BENCH_UTIL_HH
#define RHO_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"

namespace rho::bench
{

/**
 * Parse `--jobs N` (or `-j N`) from argv; any other arguments are
 * left for the bench to interpret. Returns 0 (= hardware_concurrency)
 * when the flag is absent.
 */
inline unsigned
parseJobs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (!std::strcmp(argv[i], "--jobs") || !std::strcmp(argv[i], "-j"))
            return static_cast<unsigned>(std::atoi(argv[i + 1]));
    }
    return 0;
}

/** Announce the fan-out width a campaign bench will use. */
inline void
announceJobs(unsigned jobs)
{
    unsigned resolved = jobs == 0 ? ThreadPool::defaultJobs() : jobs;
    std::printf("campaign engine: %u worker thread%s%s\n\n", resolved,
                resolved == 1 ? "" : "s",
                jobs == 0 ? " (auto; override with --jobs N)" : "");
}

/** Global budget multiplier from RHO_BENCH_SCALE. */
inline double
scale()
{
    static const double s = [] {
        const char *env = std::getenv("RHO_BENCH_SCALE");
        double v = env ? std::atof(env) : 1.0;
        return v > 0.0 ? v : 1.0;
    }();
    return s;
}

/** Scaled integer budget. */
inline std::uint64_t
scaled(std::uint64_t base)
{
    auto v = static_cast<std::uint64_t>(base * scale());
    return v > 0 ? v : 1;
}

/** Bench banner with the paper artifact being reproduced. */
inline void
banner(const std::string &id, const std::string &what)
{
    std::printf("=== %s: %s ===\n", id.c_str(), what.c_str());
    std::printf("(scaled reproduction; RHO_BENCH_SCALE=%.2f)\n\n",
                scale());
    setVerbose(false);
}

} // namespace rho::bench

#endif // RHO_BENCH_BENCH_UTIL_HH
