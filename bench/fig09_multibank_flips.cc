/**
 * @file
 * Figure 9: overall fuzzing effectiveness (total bit flips) of
 * load-based vs prefetch-based hammering across 1-4 banks on all four
 * architectures. Prefetch runs use rhoHammer's counter-speculation
 * (the paradigm under evaluation); loads run as the classic baseline.
 */

#include "bench_util.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

int
main()
{
    bench::banner("Fig. 9",
                  "total fuzzing flips: load vs prefetch x 1-4 banks "
                  "x 4 archs (DIMM S3)");

    FuzzParams params;
    params.numPatterns = static_cast<unsigned>(bench::scaled(10));
    params.locationsPerPattern = 2;
    std::uint64_t budget = bench::scaled(400000);

    TextTable table({"arch", "instr", "1 bank", "2 banks", "3 banks",
                     "4 banks"});
    for (Arch arch : allArchs) {
        for (bool prefetch : {false, true}) {
            std::vector<std::string> row = {
                archName(arch), prefetch ? "prefetch" : "load"};
            for (unsigned banks = 1; banks <= 4; ++banks) {
                MemorySystem sys(arch, DimmProfile::byId("S3"),
                                 TrrConfig{}, 10);
                HammerSession session(sys, 10);
                PatternFuzzer fuzzer(session, 11);
                HammerConfig cfg = prefetch
                    ? rhoConfig(arch, true, budget)
                    : baselineConfig(arch, true, budget);
                cfg.numBanks = banks;
                auto res = fuzzer.run(cfg, params);
                row.push_back(std::to_string(res.totalFlips));
            }
            table.addRow(row);
        }
    }
    table.print();
    std::puts("\nShape: prefetch beats load everywhere; load flips "
              "collapse with more banks; on Alder/Raptor Lake loads "
              "produce ~none at any bank count.");
    return 0;
}
