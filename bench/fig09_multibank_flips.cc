/**
 * @file
 * Figure 9: overall fuzzing effectiveness (total bit flips) of
 * load-based vs prefetch-based hammering across 1-4 banks on all four
 * architectures. Prefetch runs use rhoHammer's counter-speculation
 * (the paradigm under evaluation); loads run as the classic baseline.
 * Campaigns fan out over the parallel engine (`--jobs N`).
 */

#include "bench_util.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

int
main(int argc, char **argv)
{
    bench::banner("Fig. 9",
                  "total fuzzing flips: load vs prefetch x 1-4 banks "
                  "x 4 archs (DIMM S3)");
    unsigned jobs = bench::parseJobs(argc, argv);
    bench::announceJobs(jobs);

    FuzzParams params;
    params.numPatterns = static_cast<unsigned>(bench::scaled(10));
    params.locationsPerPattern = 2;
    params.jobs = jobs;
    std::uint64_t budget = bench::scaled(400000);

    TextTable table({"arch", "instr", "1 bank", "2 banks", "3 banks",
                     "4 banks"});
    for (Arch arch : allArchs) {
        for (bool prefetch : {false, true}) {
            std::vector<std::string> row = {
                archName(arch), prefetch ? "prefetch" : "load"};
            for (unsigned banks = 1; banks <= 4; ++banks) {
                SystemSpec spec(arch, DimmProfile::byId("S3"));
                HammerConfig cfg = prefetch
                    ? rhoConfig(arch, true, budget)
                    : baselineConfig(arch, true, budget);
                cfg.numBanks = banks;
                auto res = fuzzCampaign(spec, cfg, params, 10);
                row.push_back(std::to_string(res.totalFlips));
            }
            table.addRow(row);
        }
    }
    table.print();
    std::puts("\nShape: prefetch beats load everywhere; load flips "
              "collapse with more banks; on Alder/Raptor Lake loads "
              "produce ~none at any bank count.");
    return 0;
}
