/**
 * @file
 * Figure 8: average cache miss rate and attack time on Comet Lake for
 * the C++ (indexed) and AsmJit (immediate) primitives with load- and
 * prefetch-based hammering, across 1..8 banks.
 */

#include "bench_util.hh"
#include "hammer/hammer_session.hh"

using namespace rho;

int
main()
{
    bench::banner("Fig. 8",
                  "miss rate / time vs #banks, C++ vs JIT x load vs "
                  "prefetch (Comet Lake)");

    struct Variant
    {
        const char *name;
        HammerInstr instr;
        AddressingMode mode;
    };
    const Variant variants[] = {
        {"C++ load", HammerInstr::Load, AddressingMode::CppIndexed},
        {"C++ prefetch", HammerInstr::PrefetchNta,
         AddressingMode::CppIndexed},
        {"JIT load", HammerInstr::Load, AddressingMode::JitImmediate},
        {"JIT prefetch", HammerInstr::PrefetchNta,
         AddressingMode::JitImmediate},
    };

    unsigned patterns = static_cast<unsigned>(bench::scaled(8));
    std::uint64_t budget = bench::scaled(250000);

    TextTable miss({"variant", "1", "2", "3", "4", "6", "8"});
    TextTable time({"variant", "1", "2", "3", "4", "6", "8"});

    for (const Variant &v : variants) {
        std::vector<std::string> mrow = {v.name}, trow = {v.name};
        for (unsigned banks : {1u, 2u, 3u, 4u, 6u, 8u}) {
            MemorySystem sys(Arch::CometLake, DimmProfile::byId("S1"),
                             TrrConfig{}, 8);
            HammerSession session(sys, 8);
            Rng rng(9);
            double m = 0, t = 0;
            for (unsigned p = 0; p < patterns; ++p) {
                auto pattern = HammerPattern::randomNonUniform(rng);
                HammerConfig cfg;
                cfg.instr = v.instr;
                cfg.mode = v.mode;
                cfg.numBanks = banks;
                cfg.accessBudget = budget;
                auto loc = session.randomLocation(pattern, cfg);
                auto out = session.hammer(pattern, loc, cfg);
                m += out.perf.missRate();
                t += out.perf.timeNs / 1e6;
            }
            mrow.push_back(strFormat("%.0f%%", 100 * m / patterns));
            trow.push_back(strFormat("%.1f", t / patterns));
        }
        miss.addRow(mrow);
        time.addRow(trow);
    }
    std::puts("Average cache miss rate vs #banks:");
    miss.print();
    std::puts("\nAverage attack time (ms) vs #banks:");
    time.print();
    std::puts("\nShape: prefetch misses less than load (more severe "
              "disorder), JIT less than C++; miss rate rises with "
              "bank count; at peak miss rate prefetch is ~2x faster "
              "than load.");
    return 0;
}
