/**
 * @file
 * Section 7 (multi-tenant extension): cross-VM RowHammer vs placement
 * policy, software defenses, and on-die ECC. Two tenants share one
 * RaptorLake + DDR4 S4 machine; the attacker VM templates its own
 * partition, hammers at the partition edges, and escalates visible
 * PTE-geometry flips into a guest page-table takeover of the victim.
 *
 * The table sweeps placement {contiguous, interleaved, guarded} with
 * defenses off, then the two software defenses (per-tenant bank
 * partitioning, 4x refresh boosting) on the leakiest placement — each
 * with on-die ECC off and on, at an equal trial budget.
 *
 * Expected shape: interleaved placement with defenses off leaks
 * cross-VM flips and yields PTE takeovers; on-die ECC absorbs the
 * single-bit escapes (visible = 0) without changing the raw device
 * flips; guard rows and bank partitioning keep every flip inside the
 * attacker's own partition, so bank partitioning + ECC ends the run
 * with zero takeovers at the same budget; refresh boosting only thins
 * the flip rate and remains exploitable.
 *
 * Flags: --jobs N (worker threads), --seed N (campaign seed,
 * default 7).
 */

#include <cstring>

#include "bench_util.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "exploit/cross_vm.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

namespace
{

std::uint64_t
parseSeed(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (!std::strcmp(argv[i], "--seed"))
            return static_cast<std::uint64_t>(
                std::strtoull(argv[i + 1], nullptr, 10));
    }
    return 7;
}

struct Scenario
{
    const char *defense;
    VmPlacement placement;
    bool bankPartition;
    double refreshBoost;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Sec. 7",
                  "cross-VM templating: placement x defense x on-die "
                  "ECC, two tenants per machine");
    unsigned jobs = bench::parseJobs(argc, argv);
    std::uint64_t seed = parseSeed(argc, argv);
    bench::announceJobs(jobs);

    const unsigned trials =
        static_cast<unsigned>(bench::scaled(3));
    const unsigned hammer_runs =
        static_cast<unsigned>(std::max<std::uint64_t>(
            6, bench::scaled(128)));

    const Scenario scenarios[] = {
        {"none", VmPlacement::Contiguous, false, 1.0},
        {"none", VmPlacement::Interleaved, false, 1.0},
        {"none", VmPlacement::Guarded, false, 1.0},
        {"bank-part", VmPlacement::Interleaved, true, 1.0},
        {"boost 4x", VmPlacement::Interleaved, false, 4.0},
    };

    std::printf("two tenants x 16 MiB, %u hammer sites/trial, "
                "%u trials/config, seed %llu\n\n",
                hammer_runs, trials,
                static_cast<unsigned long long>(seed));

    TextTable table({"placement", "defense", "ecc", "trials", "flips",
                     "cross raw", "cross visible", "takeovers",
                     "sim s"});
    bool undefended_leaks = false;
    bool hardened_sealed = true;
    for (const Scenario &sc : scenarios) {
        for (bool ecc : {false, true}) {
            SystemSpec spec(Arch::RaptorLake, DimmProfile::byId("S4"));
            spec.ecc.enabled = ecc;
            spec.refreshBoost = sc.refreshBoost;
            CrossVmCampaignParams params;
            params.attack.hammerCfg =
                rhoConfig(Arch::RaptorLake, false, 120000);
            params.attack.vmCfg =
                VmConfig{sc.placement, sc.bankPartition};
            params.attack.bytesPerTenant = 16ull << 20;
            params.attack.hammerRuns = hammer_runs;
            params.trials = trials;
            params.jobs = jobs;
            CrossVmCampaignResult res =
                crossVmCampaign(spec, params, seed);
            if (!std::strcmp(sc.defense, "none")
                && sc.placement == VmPlacement::Interleaved
                && res.crossVmFlipsRaw > 0)
                undefended_leaks = true;
            if (sc.bankPartition && ecc && res.takeovers != 0)
                hardened_sealed = false;
            table.addRow(
                {vmPlacementName(sc.placement), sc.defense,
                 ecc ? "on" : "off", strFormat("%u", res.trials),
                 strFormat("%llu",
                           static_cast<unsigned long long>(
                               res.totalFlips)),
                 strFormat("%llu",
                           static_cast<unsigned long long>(
                               res.crossVmFlipsRaw)),
                 strFormat("%llu",
                           static_cast<unsigned long long>(
                               res.crossVmFlipsVisible)),
                 strFormat("%u", res.takeovers),
                 strFormat("%.2f", res.simTimeNs / 1e9)});
        }
    }
    table.print();

    std::puts("");
    std::puts(
        "Shape: interleaved placement with defenses off leaks flips\n"
        "across the tenant boundary and converts them into guest\n"
        "page-table takeovers; on-die ECC hides the single-bit\n"
        "escapes from the read path (cross visible = 0) while the\n"
        "raw device flips persist. Guard rows and per-tenant bank\n"
        "partitioning keep every flip inside the attacker's own\n"
        "partition at the same trial budget — bank partitioning +\n"
        "ECC ends with zero takeovers — while refresh boosting only\n"
        "thins the flip rate and stays exploitable.");
    if (!undefended_leaks)
        std::puts("WARNING: undefended interleaved run produced no "
                  "cross-VM flips at this scale.");
    if (!hardened_sealed)
        std::puts("WARNING: bank partitioning + ECC leaked a "
                  "takeover.");
    return undefended_leaks && hardened_sealed ? 0 : 1;
}
