/**
 * @file
 * Table 5: reverse-engineering runtime and correctness of rhoHammer's
 * method vs the DRAMA / DRAMDig / DARE baselines, per architecture.
 */

#include "bench_util.hh"
#include "revng/baseline_dare.hh"
#include "revng/baseline_drama.hh"
#include "revng/baseline_dramdig.hh"
#include "revng/reverse_engineer.hh"

using namespace rho;

namespace
{

struct Rig
{
    MemorySystem sys;
    BuddyAllocator buddy;
    PhysPool pool;
    TimingProbe probe;

    Rig(Arch arch, std::uint64_t seed)
        : sys(arch, DimmProfile::byId("S1"), TrrConfig{}, seed),
          buddy(sys.mapping().memBytes(), 0.02, seed),
          pool(buddy, 0.70), probe(sys, seed)
    {
    }
};

std::string
cell(double time_s, unsigned ok, unsigned runs, bool deterministic)
{
    if (ok == 0)
        return "-";
    std::string s = strFormat("%.1fs", time_s);
    if (!deterministic || ok < runs)
        s += strFormat("* (%u/%u)", ok, runs);
    return s;
}

} // namespace

int
main()
{
    bench::banner("Tab. 5",
                  "mapping recovery time vs prior art (16 GiB DIMM "
                  "S1; '-' = no correct result / abort)");

    unsigned runs = static_cast<unsigned>(
        std::max<std::uint64_t>(2, bench::scaled(5)));

    std::vector<std::string> header = {"tool"};
    for (Arch arch : allArchs)
        header.push_back(archCpu(arch));
    TextTable table(header);

    std::vector<std::string> drama_row = {"DRAMA"};
    std::vector<std::string> dramdig_row = {"DRAMDig"};
    std::vector<std::string> dare_row = {"DARE"};
    std::vector<std::string> rho_row = {"rhoHammer"};

    RetryStats drama_retry, dramdig_retry, dare_retry, rho_retry;

    for (Arch arch : allArchs) {
        unsigned ok;
        double t;

        // DRAMA
        ok = 0, t = 0;
        for (unsigned i = 0; i < runs; ++i) {
            Rig rig(arch, 100 + i);
            DramaReverseEngineer tool(rig.probe, rig.pool, 100 + i);
            auto rec = tool.run();
            ok += rec.matches(rig.sys.mapping());
            t += rec.simTimeNs / 1e9;
            drama_retry += rec.measureRetry;
        }
        drama_row.push_back(cell(t / runs, ok, runs, false));

        // DRAMDig
        ok = 0, t = 0;
        for (unsigned i = 0; i < runs; ++i) {
            Rig rig(arch, 200 + i);
            DramDigReverseEngineer tool(rig.probe, rig.pool, 200 + i);
            auto rec = tool.run();
            ok += rec.matches(rig.sys.mapping());
            t += rec.simTimeNs / 1e9;
            dramdig_retry += rec.measureRetry;
        }
        dramdig_row.push_back(cell(t / runs, ok, runs, true));

        // DARE
        ok = 0, t = 0;
        for (unsigned i = 0; i < runs; ++i) {
            Rig rig(arch, 300 + i);
            DareReverseEngineer tool(rig.probe, rig.pool,
                                     rig.sys.mapping(), 300 + i);
            auto rec = tool.run();
            ok += rec.matches(rig.sys.mapping());
            t += rec.simTimeNs / 1e9;
            dare_retry += rec.measureRetry;
        }
        dare_row.push_back(cell(t / runs, ok, runs, false));

        // rhoHammer
        ok = 0, t = 0;
        for (unsigned i = 0; i < runs; ++i) {
            Rig rig(arch, 400 + i);
            RhoReverseEngineer tool(rig.probe, rig.pool, 400 + i);
            auto rec = tool.run();
            ok += rec.matches(rig.sys.mapping());
            t += rec.simTimeNs / 1e9;
            rho_retry += rec.measureRetry;
        }
        rho_row.push_back(ok == runs ? strFormat("%.1fs", t / runs)
                                     : cell(t / runs, ok, runs, true));
    }
    table.addRow(drama_row);
    table.addRow(dramdig_row);
    table.addRow(dare_row);
    table.addRow(rho_row);
    table.print();
    std::printf("\nmeasurement retries (all archs, %u runs each):\n"
                "  DRAMA     %s\n  DRAMDig   %s\n  DARE      %s\n"
                "  rhoHammer %s\n",
                runs, drama_retry.summary().c_str(),
                dramdig_retry.summary().c_str(),
                dare_retry.summary().c_str(),
                rho_retry.summary().c_str());
    std::puts("\n(*) partially non-deterministic. Shape: rhoHammer "
              "recovers all platforms in seconds — including the Zen "
              "offset-region non-linearity; DRAMDig is ~two orders of "
              "magnitude slower and aborts on Alder/Raptor; DARE is "
              "partial on Comet/Rocket and fails on newer parts; DRAMA "
              "never succeeds.");
    return 0;
}
