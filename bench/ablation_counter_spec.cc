/**
 * @file
 * Ablation: which part of rhoHammer buys what? Starting from the raw
 * prefetch primitive, enable each technique in turn on all four
 * platforms — multi-bank parallelism, control-flow obfuscation, NOP
 * pseudo-barriers — and measure fuzzing flips and activation rate.
 * (Design-choice ablation called out in DESIGN.md; complements
 * Figs. 9/10 and Table 3.)
 */

#include "bench_util.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

int
main()
{
    bench::banner("Ablation",
                  "stacking rhoHammer's techniques one by one "
                  "(DIMM S3)");

    FuzzParams params;
    params.numPatterns = static_cast<unsigned>(bench::scaled(8));
    params.locationsPerPattern = 2;
    std::uint64_t budget = bench::scaled(380000);

    struct Step
    {
        const char *name;
        bool multibank, obf, nops;
    };
    const Step steps[] = {
        {"prefetch only", false, false, false},
        {"+ multi-bank", true, false, false},
        {"+ obfuscation", true, true, false},
        {"+ NOP barriers (full)", true, true, true},
        {"NOPs without obfuscation", true, false, true},
    };

    for (Arch arch : allArchs) {
        TextTable table({"configuration", "total flips", "best",
                         "ACT rate (M/s)", "miss rate"});
        for (const Step &s : steps) {
            MemorySystem sys(arch, DimmProfile::byId("S3"), TrrConfig{},
                             33);
            HammerSession session(sys, 33);
            PatternFuzzer fuzzer(session, 34);

            HammerConfig cfg;
            cfg.instr = HammerInstr::PrefetchNta;
            cfg.numBanks = s.multibank ? tunedBankCount(arch) : 1;
            cfg.obfuscate = s.obf;
            if (s.nops) {
                cfg.barrier = BarrierKind::Nop;
                cfg.nopCount = tunedNopCount(arch);
            }
            cfg.accessBudget = budget;

            auto res = fuzzer.run(cfg, params);
            // Activation-rate / miss-rate probe on one extra pattern.
            Rng rng(35);
            auto probe_pat = HammerPattern::randomNonUniform(rng);
            auto loc = session.randomLocation(probe_pat, cfg);
            auto out = session.hammer(probe_pat, loc, cfg);

            table.addRow({s.name, std::to_string(res.totalFlips),
                          std::to_string(res.bestPatternFlips),
                          strFormat("%.1f",
                                    out.perf.dramAccessRate() / 1e6),
                          strFormat("%.0f%%",
                                    out.perf.missRate() * 100)});
        }
        std::printf("--- %s ---\n", archName(arch).c_str());
        table.print();
        std::printf("\n");
    }
    std::puts("Reading: the raw prefetch primitive flips nothing on "
              "any platform; multi-bank raises the activation rate "
              "but not the order; obfuscation alone restores only a "
              "trickle; the NOP pseudo-barrier is the decisive "
              "ingredient (and in this model carries nearly all of "
              "the counter-speculation benefit).");
    return 0;
}
