/**
 * @file
 * Perf-regression harness for the activation hot path.
 *
 * Times two workloads across 3 seeds (medians reported):
 *  - device loop: raw double-sided hammering straight on Dimm::access,
 *    the loop the flat row-state fast path accelerates. Run through
 *    both row stores, so the flat-vs-reference speedup is measured in
 *    the same process. Mitigations are disabled here: the TRR sampler
 *    is identical (rng-bound) code on both paths and would only dilute
 *    the row-state signal being guarded;
 *  - end to end: a full HammerSession::hammer() with the tuned rho
 *    config (CPU model + controller + device), the configuration every
 *    table/figure bench pays for. Run twice: through the default fast
 *    stack (CpuModelKind::Blocked + RowStoreKind::Flat) and through
 *    the full original stack (Reference + Reference), the same
 *    differential the oracle suites prove bit-identical — so the
 *    speedup is measured between observably interchangeable engines.
 *
 * Writes BENCH_rho.json (override with --out PATH) in the stable
 * "rho-bench-v1" schema:
 *
 *     {
 *       "schema": "rho-bench-v1",
 *       "scale": <RHO_BENCH_SCALE>,
 *       "seeds": [1, 2, 3],
 *       "metrics": {
 *         "device_acts_per_sec": ...,        // higher is better
 *         "device_wall_ns_per_sim_ns": ...,  // lower is better
 *         "device_speedup_flat_vs_reference": ...,
 *         "e2e_acts_per_sec": ...,           // alias of e2e_blocked
 *         "e2e_wall_ns_per_sim_ns": ...,
 *         "e2e_blocked_acts_per_sec": ...,
 *         "e2e_reference_acts_per_sec": ...,
 *         "e2e_reference_wall_ns_per_sim_ns": ...,
 *         "e2e_speedup_blocked_vs_reference": ...,
 *         "service_locs_per_sec": ...,          // supervised campaign
 *         "service_relative_throughput": ...,   // vs in-process run
 *         "device_lpddr4_acts_per_sec": ...,    // per-backend records
 *         "e2e_zen3_acts_per_sec": ...,         //   (informational,
 *         "e2e_cortexa72_acts_per_sec": ...     //    never gated)
 *       }
 *     }
 *
 * service_relative_throughput guards the campaign-service supervisor:
 * a sweep sharded over worker processes (same total parallelism as
 * the in-process run it is divided by) pays only for supervision,
 * fork, status files and the journal merge. The committed baseline
 * (0.95) records the characterized ~5% overhead; the metric carries
 * its own fixed 0.10 check threshold, independent of --threshold, so
 * the supervisor may never fall below ~85% of in-process throughput
 * — i.e. overhead is gated at roughly the 10% mark.
 *
 * Modes:
 *   --out PATH        where to write the JSON (default BENCH_rho.json)
 *   --check BASELINE  compare the higher-is-better metrics against a
 *                     committed baseline; exit 1 if any drops by more
 *                     than the threshold (default 25%, --threshold F)
 *   --selfcheck       re-read the written file and validate the schema
 *                     (used by the bench smoke CTest); exit 1 on error
 */

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "dram/dimm.hh"
#include "dram/dimm_profile.hh"
#include "hammer/sweep.hh"
#include "hammer/tuned_configs.hh"
#include "service/campaign_service.hh"

using namespace rho;

namespace
{

using Clock = std::chrono::steady_clock;

double
elapsedNs(Clock::time_point t0)
{
    return std::chrono::duration<double, std::nano>(Clock::now() - t0)
        .count();
}

struct LoopResult
{
    double actsPerSec = 0.0;
    double wallNsPerSimNs = 0.0;
};

/** Raw device activation loop (no CPU model), one location per seed. */
LoopResult
deviceLoop(RowStoreKind kind, std::uint64_t seed, std::uint64_t rounds,
           const DimmProfile &p = DimmProfile::byId("S2"),
           const DramTiming *timing = nullptr)
{
    TrrConfig trr;
    trr.enabled = false; // pure row-state machinery (see file header)
    Dimm d(p, timing ? *timing : DramTiming::ddr4(p.freqMts), trr);
    d.setRowStore(kind);
    std::uint32_t bank =
        static_cast<std::uint32_t>(seed % d.geometry().flatBanks());
    std::uint64_t base = 1000 + (seed * 7919) % (d.geometry().rowsPerBank
                                                 - 1016);
    d.fillRow(bank, base + 1, 0x55, 0.0);

    Ns now = 0.0;
    Clock::time_point t0 = Clock::now();
    for (std::uint64_t r = 0; r < rounds; ++r) {
        now += d.access({bank, base, 0}, now).latency;
        now += d.access({bank, base + 2, 0}, now).latency;
    }
    double wall = elapsedNs(t0);
    LoopResult res;
    res.actsPerSec = d.totalActs() / (wall * 1e-9);
    res.wallNsPerSimNs = wall / now;
    return res;
}

/**
 * Full pipeline: tuned rho attack through the CPU model, with the
 * engine pair selected per run (fast stack vs original stack).
 */
LoopResult
endToEnd(std::uint64_t seed, std::uint64_t budget, CpuModelKind cpu,
         RowStoreKind row, Arch arch = Arch::RaptorLake,
         const DimmProfile &profile = DimmProfile::byId("S2"))
{
    MemorySystem sys(arch, profile, TrrConfig{}, seed);
    sys.setCpuModel(cpu);
    sys.dimm().setRowStore(row);
    HammerSession session(sys, seed);
    HammerConfig cfg = rhoConfig(arch, true, budget);
    HammerPattern pattern = HammerPattern::doubleSided();
    HammerLocation loc = session.randomLocation(pattern, cfg);

    Clock::time_point t0 = Clock::now();
    session.hammer(pattern, loc, cfg);
    double wall = elapsedNs(t0);
    LoopResult res;
    res.actsPerSec = sys.dimm().totalActs() / (wall * 1e-9);
    res.wallNsPerSimNs = wall / std::max(sys.now(), 1.0);
    return res;
}

/**
 * Campaign-service supervisor overhead: the same sweep run once
 * in-process (journaled, 2 jobs) and once through the supervisor
 * (2 shards x 2 worker processes, 1 job each — identical total
 * parallelism), fsync disabled on both so only supervision, fork,
 * status traffic and the journal merge differ.
 */
struct ServicePair
{
    double inprocLps = 0.0;  // locations/sec, in-process journaled run
    double serviceLps = 0.0; // locations/sec, supervised sharded run
};

ServicePair
serviceOverhead(std::uint64_t seed, std::uint64_t budget)
{
    SystemSpec spec(Arch::RaptorLake, DimmProfile::byId("S2"));
    HammerConfig cfg = rhoConfig(Arch::RaptorLake, false, budget);
    Rng prng(seed);
    HammerPattern pattern = HammerPattern::randomNonUniform(prng);

    SweepParams params;
    params.numLocations = 16;
    std::string base = "/tmp/rho_bench_service." +
                       std::to_string(static_cast<long>(::getpid())) +
                       "." + std::to_string(seed);

    // Same total parallelism on both sides, capped by the machine: on
    // a single-core runner a 2-worker service would only measure
    // context-switch pressure, not supervision cost.
    unsigned par = std::max(
        1u, std::min(2u, std::thread::hardware_concurrency()));

    SweepParams inproc = params;
    inproc.jobs = par;
    inproc.checkpointPath = base + ".inproc";
    inproc.journal.fsync = FsyncPolicy::Never;

    service::ServiceParams svc;
    // More shards than workers: the supervisor launches shards as
    // slots free up, balancing uneven per-location sim times the same
    // way the in-process pool balances tasks.
    svc.shards = 2 * par;
    svc.jobsPerWorker = 1;
    svc.journalBase = base;
    svc.fsync = FsyncPolicy::Never;
    svc.supervisor.workers = par;
    svc.supervisor.pollIntervalS = 0.002;

    // Min-of-2 walls per engine: the overhead being measured is
    // structural (fork, polling, journal merge), scheduler noise is
    // additive — the minimum converges on the structural cost.
    double inproc_wall = 0.0, service_wall = 0.0;
    for (int rep = 0; rep < 2; ++rep) {
        std::remove(inproc.checkpointPath.c_str());
        Clock::time_point t0 = Clock::now();
        sweepCampaign(spec, pattern, cfg, inproc, seed);
        double w = elapsedNs(t0);
        inproc_wall = rep ? std::min(inproc_wall, w) : w;
        std::remove(inproc.checkpointPath.c_str());

        for (unsigned k = 0; k < svc.shards; ++k) {
            std::string shard = base + ".shard" + std::to_string(k);
            std::remove(shard.c_str());
            std::remove((shard + ".status").c_str());
        }
        std::remove((base + ".merged").c_str());
        t0 = Clock::now();
        service::serviceSweepCampaign(spec, pattern, cfg, params, seed,
                                      svc);
        w = elapsedNs(t0);
        service_wall = rep ? std::min(service_wall, w) : w;
    }
    for (unsigned k = 0; k < svc.shards; ++k) {
        std::string shard = base + ".shard" + std::to_string(k);
        std::remove(shard.c_str());
        std::remove((shard + ".status").c_str());
    }
    std::remove((base + ".merged").c_str());

    ServicePair r;
    r.inprocLps = params.numLocations / (inproc_wall * 1e-9);
    r.serviceLps = params.numLocations / (service_wall * 1e-9);
    return r;
}

double
median3(double a, double b, double c)
{
    double v[3] = {a, b, c};
    std::sort(v, v + 3);
    return v[1];
}

/** Scan `text` for `"key": <number>`; false when the key is absent. */
bool
findNumber(const std::string &text, const std::string &key, double &out)
{
    std::string needle = "\"" + key + "\":";
    std::size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return false;
    const char *s = text.c_str() + pos + needle.size();
    char *end = nullptr;
    double v = std::strtod(s, &end);
    if (end == s)
        return false;
    out = v;
    return true;
}

const char *const metricNames[] = {
    "device_acts_per_sec",
    "device_wall_ns_per_sim_ns",
    "device_speedup_flat_vs_reference",
    "e2e_acts_per_sec",
    "e2e_wall_ns_per_sim_ns",
    "e2e_blocked_acts_per_sec",
    "e2e_reference_acts_per_sec",
    "e2e_reference_wall_ns_per_sim_ns",
    "e2e_speedup_blocked_vs_reference",
    "service_locs_per_sec",
    "service_relative_throughput",
    // Per-backend throughput records (informational, not gated): the
    // Zen backend pays for the non-linear mapping + REF-blocking
    // model, the ARMv8 backend for LPDDR4 timing + synchronous
    // flushes, the LPDDR4 device loop for the REF-stall branch on the
    // raw activation path.
    "device_lpddr4_acts_per_sec",
    "e2e_zen3_acts_per_sec",
    "e2e_cortexa72_acts_per_sec",
};
constexpr unsigned numMetrics = 14;

/**
 * Higher-is-better metrics gated by --check. A negative threshold
 * defers to the global --threshold; a fixed value pins the gate for
 * that metric regardless of the flag.
 */
struct CheckedMetric
{
    const char *name;
    double threshold;
};
const CheckedMetric checkedMetrics[] = {
    {"device_acts_per_sec", -1.0},
    {"device_speedup_flat_vs_reference", -1.0},
    {"e2e_acts_per_sec", -1.0},
    {"e2e_blocked_acts_per_sec", -1.0},
    {"e2e_speedup_blocked_vs_reference", -1.0},
    // Supervisor overhead gate: the sharded service run must keep
    // >=90% of in-process throughput (fixed 10% floor).
    {"service_relative_throughput", 0.10},
};

std::string
renderJson(const double metrics[numMetrics],
           const std::vector<std::uint64_t> &seeds)
{
    std::ostringstream os;
    os.precision(6);
    os << "{\n  \"schema\": \"rho-bench-v1\",\n  \"scale\": "
       << bench::scale() << ",\n  \"seeds\": [";
    for (std::size_t i = 0; i < seeds.size(); ++i)
        os << (i ? ", " : "") << seeds[i];
    os << "],\n  \"metrics\": {\n";
    for (unsigned i = 0; i < numMetrics; ++i) {
        os << "    \"" << metricNames[i] << "\": " << metrics[i]
           << (i + 1 < numMetrics ? ",\n" : "\n");
    }
    os << "  }\n}\n";
    return os.str();
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream os;
    os << in.rdbuf();
    out = os.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_rho.json";
    std::string baseline_path;
    bool selfcheck = false;
    double threshold = 0.25;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
            out_path = argv[++i];
        else if (!std::strcmp(argv[i], "--check") && i + 1 < argc)
            baseline_path = argv[++i];
        else if (!std::strcmp(argv[i], "--threshold") && i + 1 < argc)
            threshold = std::atof(argv[++i]);
        else if (!std::strcmp(argv[i], "--selfcheck"))
            selfcheck = true;
    }

    bench::banner("perf", "activation hot-path regression harness "
                          "(BENCH_rho.json)");

    const std::vector<std::uint64_t> seeds = {1, 2, 3};
    std::uint64_t device_rounds = bench::scaled(400000);
    // The reference store is the slow path being guarded against; a
    // shorter loop reaches steady state just the same.
    std::uint64_t ref_rounds = std::max<std::uint64_t>(
        device_rounds / 8, 1);
    std::uint64_t e2e_budget = bench::scaled(200000);
    std::uint64_t service_budget = bench::scaled(120000);

    double flat_aps[3], flat_wps[3], speedup[3], e2e_aps[3], e2e_wps[3];
    double e2e_ref_aps[3], e2e_ref_wps[3], e2e_speedup[3];
    double svc_lps[3], svc_rel[3];
    double lp_aps[3], zen_aps[3], arm_aps[3];
    // Service first, while the heap is small: body-mode workers fork
    // this process, and fork cost scales with the parent's page
    // tables — running after the device/e2e benches would charge
    // their allocations to the supervisor.
    for (std::size_t i = 0; i < seeds.size(); ++i) {
        ServicePair svc = serviceOverhead(seeds[i], service_budget);
        svc_lps[i] = svc.serviceLps;
        svc_rel[i] = svc.serviceLps / svc.inprocLps;
        std::printf("seed %llu: service %.2f locs/s "
                    "(%.2fx of in-process)\n",
                    static_cast<unsigned long long>(seeds[i]),
                    svc_lps[i], svc_rel[i]);
    }
    for (std::size_t i = 0; i < seeds.size(); ++i) {
        LoopResult flat =
            deviceLoop(RowStoreKind::Flat, seeds[i], device_rounds);
        LoopResult ref =
            deviceLoop(RowStoreKind::Reference, seeds[i], ref_rounds);
        LoopResult e2e = endToEnd(seeds[i], e2e_budget,
                                  CpuModelKind::Blocked,
                                  RowStoreKind::Flat);
        LoopResult e2e_ref = endToEnd(seeds[i], e2e_budget,
                                      CpuModelKind::Reference,
                                      RowStoreKind::Reference);
        flat_aps[i] = flat.actsPerSec;
        flat_wps[i] = flat.wallNsPerSimNs;
        speedup[i] = flat.actsPerSec / ref.actsPerSec;
        e2e_aps[i] = e2e.actsPerSec;
        e2e_wps[i] = e2e.wallNsPerSimNs;
        e2e_ref_aps[i] = e2e_ref.actsPerSec;
        e2e_ref_wps[i] = e2e_ref.wallNsPerSimNs;
        e2e_speedup[i] = e2e.actsPerSec / e2e_ref.actsPerSec;

        // Non-Intel backends, fast stack only (informational records).
        const DimmProfile &lp = DimmProfile::lpddr4Sample();
        DramTiming lp_tim = DramTiming::lpddr4(lp.freqMts);
        LoopResult lp_dev = deviceLoop(RowStoreKind::Flat, seeds[i],
                                       ref_rounds, lp, &lp_tim);
        LoopResult zen = endToEnd(seeds[i], e2e_budget,
                                  CpuModelKind::Blocked,
                                  RowStoreKind::Flat, Arch::Zen3);
        LoopResult arm = endToEnd(seeds[i], e2e_budget,
                                  CpuModelKind::Blocked,
                                  RowStoreKind::Flat, Arch::CortexA72,
                                  lp);
        lp_aps[i] = lp_dev.actsPerSec;
        zen_aps[i] = zen.actsPerSec;
        arm_aps[i] = arm.actsPerSec;

        std::printf("seed %llu: device %.2fM acts/s (ref %.2fM, "
                    "speedup %.2fx), end-to-end %.2fM acts/s "
                    "(ref %.2fM, speedup %.2fx), zen3 %.2fM, "
                    "cortex-a72 %.2fM\n",
                    static_cast<unsigned long long>(seeds[i]),
                    flat.actsPerSec / 1e6, ref.actsPerSec / 1e6,
                    speedup[i], e2e.actsPerSec / 1e6,
                    e2e_ref.actsPerSec / 1e6, e2e_speedup[i],
                    zen.actsPerSec / 1e6, arm.actsPerSec / 1e6);
    }

    double metrics[numMetrics] = {
        median3(flat_aps[0], flat_aps[1], flat_aps[2]),
        median3(flat_wps[0], flat_wps[1], flat_wps[2]),
        median3(speedup[0], speedup[1], speedup[2]),
        median3(e2e_aps[0], e2e_aps[1], e2e_aps[2]),
        median3(e2e_wps[0], e2e_wps[1], e2e_wps[2]),
        // e2e_blocked is the same measurement as the legacy
        // e2e_acts_per_sec (the default stack IS the blocked one);
        // both keys are emitted so old and new baselines stay valid.
        median3(e2e_aps[0], e2e_aps[1], e2e_aps[2]),
        median3(e2e_ref_aps[0], e2e_ref_aps[1], e2e_ref_aps[2]),
        median3(e2e_ref_wps[0], e2e_ref_wps[1], e2e_ref_wps[2]),
        median3(e2e_speedup[0], e2e_speedup[1], e2e_speedup[2]),
        median3(svc_lps[0], svc_lps[1], svc_lps[2]),
        median3(svc_rel[0], svc_rel[1], svc_rel[2]),
        median3(lp_aps[0], lp_aps[1], lp_aps[2]),
        median3(zen_aps[0], zen_aps[1], zen_aps[2]),
        median3(arm_aps[0], arm_aps[1], arm_aps[2]),
    };

    std::printf("\nmedians over %zu seeds:\n", seeds.size());
    for (unsigned i = 0; i < numMetrics; ++i)
        std::printf("  %-34s %g\n", metricNames[i], metrics[i]);

    std::string json = renderJson(metrics, seeds);
    {
        std::ofstream out(out_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "FAIL: cannot write %s\n",
                         out_path.c_str());
            return 1;
        }
        out << json;
    }
    std::printf("\nwrote %s\n", out_path.c_str());

    if (selfcheck) {
        std::string back;
        if (!readFile(out_path, back)
            || back.find("\"rho-bench-v1\"") == std::string::npos) {
            std::fprintf(stderr, "FAIL: %s missing rho-bench-v1 schema\n",
                         out_path.c_str());
            return 1;
        }
        for (const char *name : metricNames) {
            double v = 0.0;
            if (!findNumber(back, name, v) || !(v > 0.0)) {
                std::fprintf(stderr,
                             "FAIL: %s: metric %s missing or not a "
                             "positive number\n",
                             out_path.c_str(), name);
                return 1;
            }
        }
        std::printf("selfcheck: schema and all %u metrics OK\n",
                    numMetrics);
    }

    if (!baseline_path.empty()) {
        std::string base;
        if (!readFile(baseline_path, base)) {
            std::fprintf(stderr, "FAIL: cannot read baseline %s\n",
                         baseline_path.c_str());
            return 1;
        }
        bool ok = true;
        for (const CheckedMetric &m : checkedMetrics) {
            double want = 0.0, got = 0.0;
            if (!findNumber(base, m.name, want)) {
                std::fprintf(stderr,
                             "FAIL: baseline %s lacks metric %s\n",
                             baseline_path.c_str(), m.name);
                ok = false;
                continue;
            }
            findNumber(json, m.name, got);
            double t = m.threshold < 0.0 ? threshold : m.threshold;
            double floor = want * (1.0 - t);
            bool pass = got >= floor;
            std::printf("check %-34s %g vs baseline %g (floor %g): %s\n",
                        m.name, got, want, floor, pass ? "ok" : "REGRESSED");
            ok = ok && pass;
        }
        if (!ok) {
            std::fprintf(stderr,
                         "FAIL: perf regressed more than %.0f%% against "
                         "%s\n",
                         threshold * 100.0, baseline_path.c_str());
            return 1;
        }
        std::printf("perf within %.0f%% of baseline %s\n",
                    threshold * 100.0, baseline_path.c_str());
    }
    return 0;
}
