/**
 * @file
 * Table 3: comparison of barrier strategies on Alder and Raptor Lake.
 * Upper number: bit flips when sweeping best patterns; lower: time.
 */

#include "bench_util.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/sweep.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

namespace
{

struct Strategy
{
    const char *name;
    HammerInstr instr;
    BarrierKind barrier;
};

} // namespace

int
main()
{
    bench::banner("Tab. 3",
                  "barriers on Alder/Raptor Lake: flips (upper) and "
                  "completion time in ms (lower), DIMM S2");

    const Strategy strategies[] = {
        {"None", HammerInstr::PrefetchNta, BarrierKind::None},
        {"CPUID", HammerInstr::PrefetchNta, BarrierKind::Cpuid},
        {"MFENCE", HammerInstr::PrefetchNta, BarrierKind::Mfence},
        {"LFENCE (load)", HammerInstr::Load, BarrierKind::Lfence},
        {"LFENCE (prefetch)", HammerInstr::PrefetchNta,
         BarrierKind::Lfence},
        {"NOP", HammerInstr::PrefetchNta, BarrierKind::Nop},
    };

    TextTable table({"arch", "None", "CPUID", "MFENCE",
                     "LFENCE (load)", "LFENCE (prefetch)", "NOP"});

    unsigned locations = static_cast<unsigned>(bench::scaled(8));
    std::uint64_t budget = bench::scaled(380000);
    // CPUID/MFENCE runs are ~20x slower in simulated AND host time;
    // cap their budget (they produce zero flips regardless).
    std::uint64_t slow_budget = std::max<std::uint64_t>(budget / 8, 1);

    for (Arch arch : {Arch::AlderLake, Arch::RaptorLake}) {
        MemorySystem sys(arch, DimmProfile::byId("S2"), TrrConfig{}, 16);
        HammerSession session(sys, 16);

        // Best pattern from a short fuzz under the NOP strategy.
        PatternFuzzer fuzzer(session, 17);
        FuzzParams fp;
        fp.numPatterns = static_cast<unsigned>(bench::scaled(8));
        fp.locationsPerPattern = 2;
        auto fz = fuzzer.run(rhoConfig(arch, true, budget), fp);
        if (!fz.bestPattern) {
            warn("no effective pattern on %s at this scale",
                 archName(arch).c_str());
            continue;
        }

        std::vector<std::string> flips_row = {archName(arch)};
        std::vector<std::string> time_row = {""};
        for (const Strategy &s : strategies) {
            HammerConfig cfg = rhoConfig(arch, true, budget);
            cfg.instr = s.instr;
            cfg.barrier = s.barrier;
            if (s.barrier != BarrierKind::Nop)
                cfg.nopCount = 0;
            if (s.barrier == BarrierKind::Cpuid ||
                s.barrier == BarrierKind::Mfence) {
                cfg.accessBudget = slow_budget;
            }
            auto res = sweep(session, *fz.bestPattern, cfg, locations,
                             18);
            double scale_up = double(budget) / cfg.accessBudget;
            flips_row.push_back(std::to_string(res.totalFlips));
            time_row.push_back(
                strFormat("%.1f", res.simTimeNs / 1e6 * scale_up));
        }
        table.addRow(flips_row);
        table.addRow(time_row);
    }
    table.print();
    std::puts("\nShape: CPUID/MFENCE order but are far too slow (0 "
              "flips); LFENCE only helps prefetching through the "
              "indexed address chain; load+LFENCE stays at ~0; the "
              "NOP pseudo-barrier is fastest-ordered and flips most.");
    return 0;
}
