/**
 * @file
 * Table 6: bit flip counts (total, best pattern) during fuzzing on
 * all platforms, for baseline/rhoHammer x single-bank/multi-bank,
 * over all seven DIMMs. Scaled-down version of the paper's 2-hour
 * campaigns, fanned out over the parallel campaign engine
 * (`--jobs N`; results are bit-identical for any job count).
 */

#include "bench_util.hh"
#include "common/parallel.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

int
main(int argc, char **argv)
{
    bench::banner("Tab. 6",
                  "fuzzing flips (total, best pattern): BL/rho x S/M "
                  "per DIMM and arch");
    unsigned jobs = bench::parseJobs(argc, argv);
    bench::announceJobs(jobs);

    FuzzParams params;
    params.numPatterns = static_cast<unsigned>(bench::scaled(8));
    params.locationsPerPattern = 2;
    params.jobs = jobs;
    std::uint64_t budget = bench::scaled(380000);

    ParallelStats total_stats;
    total_stats.jobs = resolveJobs(jobs);
    for (Arch arch : allArchs) {
        TextTable table({"DIMM", "BL-S", "BL-M", "rho-S", "rho-M"});
        for (const DimmProfile *dimm : DimmProfile::all()) {
            std::vector<std::string> row = {dimm->id};
            for (int mode = 0; mode < 4; ++mode) {
                bool rho = mode >= 2;
                bool multi = mode & 1;
                SystemSpec spec(arch, *dimm);
                HammerConfig cfg = rho
                    ? rhoConfig(arch, multi, budget)
                    : baselineConfig(arch, multi, budget);
                ParallelStats stats;
                auto res = fuzzCampaign(spec, cfg, params, 20, &stats);
                total_stats.tasksRun += stats.tasksRun;
                total_stats.steals += stats.steals;
                total_stats.wallNs += stats.wallNs;
                total_stats.simNs += stats.simNs;
                row.push_back(strFormat(
                    "%llu, %llu",
                    (unsigned long long)res.totalFlips,
                    (unsigned long long)res.bestPatternFlips));
            }
            table.addRow(row);
        }
        std::printf("--- %s ---\n", archName(arch).c_str());
        table.print();
        std::printf("\n");
    }
    std::printf("engine: jobs=%u tasks=%llu steals=%llu wall=%.0f ms "
                "sim=%.0f ms\n\n",
                total_stats.jobs,
                (unsigned long long)total_stats.tasksRun,
                (unsigned long long)total_stats.steals,
                total_stats.wallNs / 1e6, total_stats.simNs / 1e6);
    std::puts("Shape: rho-M >= rho-S >> BL everywhere; BL-M often "
              "below BL-S on Comet/Rocket; BL ~0 on Alder/Raptor "
              "while rhoHammer revives flips; M1 never flips; "
              "S4 > S3 > S2 ~ S1 >> S5 ~ H1.");
    return 0;
}
