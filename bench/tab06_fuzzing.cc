/**
 * @file
 * Table 6: bit flip counts (total, best pattern) during fuzzing on
 * all platforms, for baseline/rhoHammer x single-bank/multi-bank,
 * over all seven DIMMs. Scaled-down version of the paper's 2-hour
 * campaigns.
 */

#include "bench_util.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

int
main()
{
    bench::banner("Tab. 6",
                  "fuzzing flips (total, best pattern): BL/rho x S/M "
                  "per DIMM and arch");

    FuzzParams params;
    params.numPatterns = static_cast<unsigned>(bench::scaled(8));
    params.locationsPerPattern = 2;
    std::uint64_t budget = bench::scaled(380000);

    for (Arch arch : allArchs) {
        TextTable table({"DIMM", "BL-S", "BL-M", "rho-S", "rho-M"});
        for (const DimmProfile *dimm : DimmProfile::all()) {
            std::vector<std::string> row = {dimm->id};
            for (int mode = 0; mode < 4; ++mode) {
                bool rho = mode >= 2;
                bool multi = mode & 1;
                MemorySystem sys(arch, *dimm, TrrConfig{}, 20);
                HammerSession session(sys, 20);
                PatternFuzzer fuzzer(session, 21);
                HammerConfig cfg = rho
                    ? rhoConfig(arch, multi, budget)
                    : baselineConfig(arch, multi, budget);
                auto res = fuzzer.run(cfg, params);
                row.push_back(strFormat(
                    "%llu, %llu",
                    (unsigned long long)res.totalFlips,
                    (unsigned long long)res.bestPatternFlips));
            }
            table.addRow(row);
        }
        std::printf("--- %s ---\n", archName(arch).c_str());
        table.print();
        std::printf("\n");
    }
    std::puts("Shape: rho-M >= rho-S >> BL everywhere; BL-M often "
              "below BL-S on Comet/Rocket; BL ~0 on Alder/Raptor "
              "while rhoHammer revives flips; M1 never flips; "
              "S4 > S3 > S2 ~ S1 >> S5 ~ H1.");
    return 0;
}
