/**
 * @file
 * Section 5.3: end-to-end PTE-corruption attack statistics on the two
 * newest platforms — templated/exploitable flips, templating time and
 * end-to-end runtime over independent trials.
 */

#include "bench_util.hh"
#include "exploit/pte_attack.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

int
main()
{
    bench::banner("Sec. 5.3",
                  "end-to-end PTE corruption on Alder/Raptor Lake "
                  "(DIMM S4), 5 independent trials each");

    unsigned trials = static_cast<unsigned>(
        std::max<std::uint64_t>(2, bench::scaled(5)));

    TextTable table({"arch", "trial", "flips", "exploitable",
                     "templating", "end-to-end", "result"});

    for (Arch arch : {Arch::AlderLake, Arch::RaptorLake}) {
        unsigned successes = 0;
        double min_t = 1e30, max_t = 0, sum_t = 0;
        RetryStats tmpl_retry, massage_retry, rehammer_retry;
        for (unsigned i = 0; i < trials; ++i) {
            // Decorrelate the per-component RNG streams: giving every
            // component the same trial seed makes the DIMM's weak-cell
            // placement, the allocator holes and the hammer patterns
            // move in lockstep across trials.
            std::uint64_t trial_seed =
                hashCombine(static_cast<std::uint64_t>(arch) * 1000 + 30,
                            i);
            MemorySystem sys(arch, DimmProfile::byId("S4"), TrrConfig{},
                             hashCombine(trial_seed, 1));
            BuddyAllocator buddy(sys.mapping().memBytes(), 0.02,
                                 hashCombine(trial_seed, 2));
            HammerSession session(sys, hashCombine(trial_seed, 3));
            PageTableManager pt(sys, buddy);
            PteAttack attack(session, buddy, pt,
                             hashCombine(trial_seed, 4));

            PteAttackParams params;
            params.hammerCfg =
                rhoConfig(arch, false, bench::scaled(120000));
            params.regions = 3;
            auto res = attack.run(params);

            table.addRow({archName(arch), std::to_string(i + 1),
                          std::to_string(res.totalFlips),
                          std::to_string(res.exploitableFlips),
                          strFormat("%.1fs", res.templatingTimeNs / 1e9),
                          strFormat("%.1fs", res.endToEndTimeNs / 1e9),
                          res.success ? "page-table R/W"
                                      : res.failureReason});
            successes += res.success;
            tmpl_retry += res.templateRetry;
            massage_retry += res.massageRetry;
            rehammer_retry += res.rehammerRetry;
            if (res.success) {
                min_t = std::min(min_t, res.endToEndTimeNs / 1e9);
                max_t = std::max(max_t, res.endToEndTimeNs / 1e9);
                sum_t += res.endToEndTimeNs / 1e9;
            }
        }
        std::printf("%s: %u/%u trials gained page-table read/write",
                    archName(arch).c_str(), successes, trials);
        if (successes) {
            std::printf(" (avg %.1fs, min %.1fs, max %.1fs)",
                        sum_t / successes, min_t, max_t);
        }
        std::printf("\n  retries: templating [%s]\n"
                    "           massaging  [%s]\n"
                    "           re-hammer  [%s]\n",
                    tmpl_retry.summary().c_str(),
                    massage_retry.summary().c_str(),
                    rehammer_retry.summary().c_str());
    }
    std::printf("\n");
    table.print();
    std::puts("\nShape: a practical fraction of templated flips is "
              "PTE-exploitable (bits 12-19 of an aligned word), and "
              "massaging + re-hammering yields page-table control in "
              "simulated minutes.");
    return 0;
}
