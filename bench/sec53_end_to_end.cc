/**
 * @file
 * Section 5.3: end-to-end PTE-corruption attack statistics on the two
 * newest platforms — templated/exploitable flips, templating time and
 * end-to-end runtime over independent trials.
 */

#include "bench_util.hh"
#include "exploit/pte_attack.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

int
main()
{
    bench::banner("Sec. 5.3",
                  "end-to-end PTE corruption on Alder/Raptor Lake "
                  "(DIMM S4), 5 independent trials each");

    unsigned trials = static_cast<unsigned>(
        std::max<std::uint64_t>(2, bench::scaled(5)));

    TextTable table({"arch", "trial", "flips", "exploitable",
                     "templating", "end-to-end", "result"});

    for (Arch arch : {Arch::AlderLake, Arch::RaptorLake}) {
        unsigned successes = 0;
        double min_t = 1e30, max_t = 0, sum_t = 0;
        for (unsigned i = 0; i < trials; ++i) {
            MemorySystem sys(arch, DimmProfile::byId("S4"), TrrConfig{},
                             30 + i);
            BuddyAllocator buddy(sys.mapping().memBytes(), 0.02, 30 + i);
            HammerSession session(sys, 30 + i);
            PageTableManager pt(sys, buddy);
            PteAttack attack(session, buddy, pt, 30 + i);

            PteAttackParams params;
            params.hammerCfg =
                rhoConfig(arch, false, bench::scaled(120000));
            params.regions = 3;
            auto res = attack.run(params);

            table.addRow({archName(arch), std::to_string(i + 1),
                          std::to_string(res.totalFlips),
                          std::to_string(res.exploitableFlips),
                          strFormat("%.1fs", res.templatingTimeNs / 1e9),
                          strFormat("%.1fs", res.endToEndTimeNs / 1e9),
                          res.success ? "page-table R/W"
                                      : res.failureReason});
            successes += res.success;
            if (res.success) {
                min_t = std::min(min_t, res.endToEndTimeNs / 1e9);
                max_t = std::max(max_t, res.endToEndTimeNs / 1e9);
                sum_t += res.endToEndTimeNs / 1e9;
            }
        }
        std::printf("%s: %u/%u trials gained page-table read/write",
                    archName(arch).c_str(), successes, trials);
        if (successes) {
            std::printf(" (avg %.1fs, min %.1fs, max %.1fs)",
                        sum_t / successes, min_t, max_t);
        }
        std::printf("\n");
    }
    std::printf("\n");
    table.print();
    std::puts("\nShape: a practical fraction of templated flips is "
              "PTE-exploitable (bits 12-19 of an aligned word), and "
              "massaging + re-hammering yields page-table control in "
              "simulated minutes.");
    return 0;
}
