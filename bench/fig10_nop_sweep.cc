/**
 * @file
 * Figure 10: number of bit flips vs NOP pseudo-barrier size when
 * sweeping a best pattern on Raptor Lake. Both extremes fail: too few
 * NOPs cannot counter the out-of-order disorder, too many sacrifice
 * the activation rate.
 */

#include "bench_util.hh"
#include "hammer/nop_tuner.hh"
#include "hammer/pattern_fuzzer.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

int
main()
{
    bench::banner("Fig. 10",
                  "flips vs NOP count, best pattern sweep on Raptor "
                  "Lake (DIMM S4)");

    MemorySystem sys(Arch::RaptorLake, DimmProfile::byId("S4"),
                     TrrConfig{}, 12);
    HammerSession session(sys, 12);

    // Find a best pattern with a short fuzz first (as the paper does).
    PatternFuzzer fuzzer(session, 13);
    FuzzParams fp;
    fp.numPatterns = static_cast<unsigned>(bench::scaled(8));
    fp.locationsPerPattern = 2;
    HammerConfig cfg = rhoConfig(Arch::RaptorLake, true,
                                 bench::scaled(400000));
    auto fz = fuzzer.run(cfg, fp);
    if (!fz.bestPattern) {
        std::puts("no effective pattern found at this scale; rerun "
                  "with RHO_BENCH_SCALE >= 1");
        return 0;
    }

    std::vector<unsigned> nops = {0,   50,   100,  200,  400, 800,
                                  1200, 2000, 3200, 4800};
    auto res = tuneNops(session, *fz.bestPattern, cfg, nops,
                        static_cast<unsigned>(bench::scaled(6)), 14);

    TextTable table({"nop count", "bit flips", "miss rate",
                     "time (ms)"});
    for (const auto &pt : res.curve) {
        table.addRow({std::to_string(pt.nops),
                      std::to_string(pt.flips),
                      strFormat("%.0f%%", pt.missRate * 100),
                      strFormat("%.1f", pt.timeNs / 1e6)});
    }
    table.print();
    std::printf("\noptimum: %u NOPs (%llu flips)\n", res.bestNops,
                (unsigned long long)res.bestFlips);
    std::puts("Shape: zero at both extremes of the range, optimum in "
              "the interior positive range.");

    // Counter-check from the paper: applying the same counter-
    // speculation to load-based hammering yields nothing.
    HammerConfig load_cfg = cfg;
    load_cfg.instr = HammerInstr::Load;
    auto load_res = tuneNops(session, *fz.bestPattern, load_cfg,
                             {0, 200, 800, 2000},
                             static_cast<unsigned>(bench::scaled(4)),
                             15);
    std::printf("load-based with the same technique: best %llu flips "
                "at %u NOPs (expected ~0)\n",
                (unsigned long long)load_res.bestFlips,
                load_res.bestNops);
    return 0;
}
