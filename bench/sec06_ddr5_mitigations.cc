/**
 * @file
 * Section 6 ("Towards Future Research on DDR5"): mitigation
 * effectiveness on the DDR5 sample DIMM. Three pattern classes —
 * classic uniform double-sided hammering, blind fuzzed non-uniform
 * patterns, and the evolutionary frequency-domain search — run against
 * the mitigation frontier (TRR-only baseline, RFM levels, PRAC
 * thresholds, RFM+PRAC), reporting flips, flips per simulated minute,
 * and how hard each mitigation had to work.
 *
 * The second table is the bypass boundary: blind sampler vs evolved
 * search at an equal trial budget per config, with the evolved
 * learning curve and a per-config verdict (open / evo-only /
 * blind-only / sealed). The evolved search sharpens the boundary: it
 * finds flips blind sampling misses on the leaky configs while the
 * provisioned defenses stay sealed.
 *
 * Expected shape: non-uniform fuzzing bypasses the TRR-only baseline
 * and the deliberately under-provisioned prac-weak config, relaxed RFM
 * (RAAIMT 64) leaks a trickle, while RFM at RAAIMT <= 32 and
 * provisioned PRAC yield zero flips in every class — the paper's
 * observation that no effective pattern exists on correctly configured
 * DDR5 setups.
 *
 * Flags: --jobs N (worker threads), --seed N (campaign seed, default
 * 7; CI runs several seeds to check the boundary is not a sampling
 * artifact).
 */

#include "bench_util.hh"
#include "common/parallel.hh"
#include "hammer/bypass_search.hh"
#include "hammer/sweep.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

namespace
{

std::uint64_t
parseSeed(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (!std::strcmp(argv[i], "--seed"))
            return static_cast<std::uint64_t>(
                std::strtoull(argv[i + 1], nullptr, 10));
    }
    return 7;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::banner("Sec. 6",
                  "DDR5 mitigation frontier: flips per config x "
                  "pattern class");
    unsigned jobs = bench::parseJobs(argc, argv);
    bench::announceJobs(jobs);
    const std::uint64_t seed = parseSeed(argc, argv);

    const Arch arch = Arch::RaptorLake;
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    const std::uint64_t budget = bench::scaled(200000);
    const HammerConfig cfg = rhoConfig(arch, true, budget);

    // Uniform class: one double-sided pattern swept over locations.
    SweepParams uniform_params;
    uniform_params.numLocations =
        static_cast<unsigned>(bench::scaled(6));
    uniform_params.jobs = jobs;
    HammerPattern uniform = HammerPattern::doubleSided();

    // Evolved class sizing; the blind class gets the same trial
    // budget (populationSize * generations patterns) so the boundary
    // table compares search strategies, not sample counts.
    BypassParams evolved_params;
    evolved_params.engine = BypassEngine::Evolved;
    evolved_params.evo.populationSize = 6;
    evolved_params.evo.generations = std::max<unsigned>(
        2, static_cast<unsigned>(bench::scaled(4)));
    evolved_params.evo.locationsPerPattern = 2;
    evolved_params.evo.jobs = jobs;
    evolved_params.seed = seed;

    BypassParams blind_params;
    blind_params.fuzz.numPatterns = evolved_params.evo.trialBudget();
    blind_params.fuzz.locationsPerPattern = 2;
    blind_params.fuzz.jobs = jobs;
    blind_params.seed = seed;

    auto frontier = mitigationFrontier();
    BypassReport fuzzed = bypassSearch(arch, d1, cfg, frontier,
                                       blind_params);
    BypassReport evolved = bypassSearch(arch, d1, cfg, frontier,
                                        evolved_params);

    TextTable table({"config", "uni flips", "uni f/min", "fuzz flips",
                     "fuzz f/min", "RFMs", "alerts", "bypassed"});
    unsigned bypassed_configs = 0;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        const MitigationConfig &mit = frontier[i];
        SystemSpec spec(arch, d1, mit.trr, mit.rfm);
        spec.prac = mit.prac;

        SweepResult uni = sweepCampaign(spec, uniform, cfg,
                                        uniform_params, 13);
        const BypassConfigResult &fz = fuzzed.configs[i];
        bool bypassed = fz.bypassed || uni.totalFlips > 0;
        bypassed_configs += bypassed ? 1 : 0;
        table.addRow({
            mit.name,
            strFormat("%llu", (unsigned long long)uni.totalFlips),
            strFormat("%.1f", uni.flipsPerMinute()),
            strFormat("%llu", (unsigned long long)fz.fuzz.totalFlips),
            strFormat("%.1f", fz.flipsPerMinute),
            strFormat("%llu", (unsigned long long)fz.rfmCommands),
            strFormat("%llu", (unsigned long long)fz.pracAlerts),
            bypassed ? "YES" : "no",
        });
    }
    table.print();
    std::printf("\n%u of %zu configs bypassed\n\n", bypassed_configs,
                frontier.size());

    std::printf("Bypass boundary (blind vs evolved, %u trials per "
                "config, seed %llu):\n",
                evolved_params.evo.trialBudget(),
                (unsigned long long)seed);
    std::fputs(renderBypassBoundary(fuzzed, evolved).c_str(), stdout);
    std::printf("\nevolved bypassed %u of %zu configs (blind: %u)\n\n",
                evolved.bypassedCount(), frontier.size(),
                fuzzed.bypassedCount());

    std::puts("Shape: trr-only and prac-weak leak under fuzzing; "
              "rfm-relaxed (RAAIMT 64) leaks a trickle; RFM at "
              "RAAIMT <= 32 and provisioned PRAC show 0 flips at "
              "non-zero RFM/alert activity. Both engines agree on "
              "every open/sealed verdict, and the evolved curve rises "
              "across generations on the open configs; with a deeper "
              "generation budget the evolved best overtakes blind "
              "sampling (pinned in tests/test_evo.cc).");
    return 0;
}
