/**
 * @file
 * Section 6 ("Towards Future Research on DDR5"): mitigation
 * effectiveness on the DDR5 sample DIMM. Two pattern classes — classic
 * uniform double-sided hammering and fuzzed non-uniform patterns — run
 * against the mitigation frontier (TRR-only baseline, RFM levels,
 * PRAC thresholds, RFM+PRAC), reporting flips, flips per simulated
 * minute, and how hard each mitigation had to work.
 *
 * Expected shape: non-uniform fuzzing bypasses the TRR-only baseline
 * and the deliberately under-provisioned prac-weak config, relaxed RFM
 * (RAAIMT 64) leaks a trickle, while RFM at RAAIMT <= 32 and
 * provisioned PRAC yield zero flips in both classes — the paper's
 * observation that no effective pattern exists on correctly configured
 * DDR5 setups.
 */

#include "bench_util.hh"
#include "common/parallel.hh"
#include "hammer/bypass_search.hh"
#include "hammer/sweep.hh"
#include "hammer/tuned_configs.hh"

using namespace rho;

int
main(int argc, char **argv)
{
    bench::banner("Sec. 6",
                  "DDR5 mitigation frontier: flips per config x "
                  "pattern class");
    unsigned jobs = bench::parseJobs(argc, argv);
    bench::announceJobs(jobs);

    const Arch arch = Arch::RaptorLake;
    const DimmProfile &d1 = DimmProfile::ddr5Sample();
    const std::uint64_t budget = bench::scaled(200000);
    const HammerConfig cfg = rhoConfig(arch, true, budget);

    // Uniform class: one double-sided pattern swept over locations.
    SweepParams uniform_params;
    uniform_params.numLocations =
        static_cast<unsigned>(bench::scaled(6));
    uniform_params.jobs = jobs;
    HammerPattern uniform = HammerPattern::doubleSided();

    // Non-uniform class: the fuzzing bypass search.
    BypassParams bypass_params;
    bypass_params.fuzz.numPatterns =
        static_cast<unsigned>(bench::scaled(10));
    bypass_params.fuzz.locationsPerPattern = 2;
    bypass_params.fuzz.jobs = jobs;
    bypass_params.seed = 7;

    auto frontier = mitigationFrontier();
    BypassReport fuzzed = bypassSearch(arch, d1, cfg, frontier,
                                       bypass_params);

    TextTable table({"config", "uni flips", "uni f/min", "fuzz flips",
                     "fuzz f/min", "RFMs", "alerts", "bypassed"});
    unsigned bypassed_configs = 0;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
        const MitigationConfig &mit = frontier[i];
        SystemSpec spec(arch, d1, mit.trr, mit.rfm);
        spec.prac = mit.prac;

        SweepResult uni = sweepCampaign(spec, uniform, cfg,
                                        uniform_params, 13);
        const BypassConfigResult &fz = fuzzed.configs[i];
        bool bypassed = fz.bypassed || uni.totalFlips > 0;
        bypassed_configs += bypassed ? 1 : 0;
        table.addRow({
            mit.name,
            strFormat("%llu", (unsigned long long)uni.totalFlips),
            strFormat("%.1f", uni.flipsPerMinute()),
            strFormat("%llu", (unsigned long long)fz.fuzz.totalFlips),
            strFormat("%.1f", fz.flipsPerMinute),
            strFormat("%llu", (unsigned long long)fz.rfmCommands),
            strFormat("%llu", (unsigned long long)fz.pracAlerts),
            bypassed ? "YES" : "no",
        });
    }
    table.print();
    std::printf("\n%u of %zu configs bypassed\n\n", bypassed_configs,
                frontier.size());
    std::puts("Shape: trr-only and prac-weak leak under fuzzing; "
              "rfm-relaxed (RAAIMT 64) leaks a trickle; RFM at "
              "RAAIMT <= 32 and provisioned PRAC show 0 flips at "
              "non-zero RFM/alert activity.");
    return 0;
}
