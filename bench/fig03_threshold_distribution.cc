/**
 * @file
 * Figure 3: density distribution of pairwise access latencies with
 * the derived SBDR threshold, per architecture.
 */

#include "bench_util.hh"
#include "common/stats.hh"
#include "memsys/timing_probe.hh"
#include "os/pagemap.hh"

using namespace rho;

int
main()
{
    bench::banner("Fig. 3",
                  "latency density distribution and SBDR threshold");

    for (Arch arch : allArchs) {
        MemorySystem sys(arch, DimmProfile::byId("S1"), TrrConfig{}, 3);
        BuddyAllocator buddy(sys.mapping().memBytes(), 0.02, 3);
        PhysPool pool(buddy, 0.70);
        TimingProbe probe(sys, 3);
        Rng rng(3);

        Histogram hist(20.0, 140.0, 60);
        unsigned pairs = static_cast<unsigned>(bench::scaled(1500));
        for (unsigned i = 0; i < pairs; ++i) {
            hist.add(probe.measurePair(pool.randomAddr(rng),
                                       pool.randomAddr(rng), 8));
        }
        double thres = hist.separatingThreshold(0.005);

        std::printf("--- %s (%u random pairs) ---\n",
                    archName(arch).c_str(), pairs);
        for (unsigned b = 0; b < hist.numBins(); ++b) {
            if (hist.binCount(b) == 0)
                continue;
            double frac = double(hist.binCount(b)) / hist.totalCount();
            int stars = static_cast<int>(frac * 200);
            std::printf("%6.1f ns | %-50.*s %5.2f%%\n",
                        hist.binCenter(b), std::min(stars, 50),
                        "**************************************************",
                        frac * 100);
        }
        double above = hist.fractionAbove(thres);
        std::printf("threshold = %.1f ns; SBDR fraction = %.3f "
                    "(expect ~1/(#banks-1) = %.3f)\n\n",
                    thres, above, 1.0 / (sys.mapping().numBanks() - 1));
    }
    return 0;
}
